"""Declarative campaign grids: (instances x algorithms x p x cap factors).

The paper's whole experimental section is one shape of computation:
sweep a set of schedulers over a set of trees while varying the
processor count (and, for the memory-capped extension, the cap). A
:class:`Campaign` states that grid declaratively; :func:`run_campaign`
expands it into scenarios, **groups them by tree**, and executes each
group against a single :class:`~repro.core.prepared.PreparedTree` -- so
the per-tree preparation (CSR counts, memory columns, the optimal
postorder, every priority-rank permutation) is paid once per tree
instead of once per scenario. Every algorithm in
:mod:`repro.registry` gets grid support for free: cap factors apply to
the algorithms that declare a ``cap_factor`` parameter, the engine
backend to the ones that declare ``backend``.

On top of the grouping, each tree's engine-backed scenarios are swept
in **one megabatch kernel call** (:func:`repro.core.engine.sweep_batch`):
the stacked grid crosses the Python boundary once and the compiled
backends thread across scenarios (OpenMP / numba ``prange``), GIL-free,
with bit-identical per-scenario results for any thread count.

Execution properties, all property-tested:

* **Deterministic order.** Scenarios expand p-major then
  algorithm-major (then cap-major), matching the historical
  ``run_experiments`` stream; records are collected in submission
  order, so serial, pooled, shared-memory and sharded runs are
  byte-identical.
* **Resumable checkpoints.** With ``checkpoint=path`` every record is
  appended to a record store (flushed per record) -- the historical
  JSONL file, or a columnar segment store with ``store="columnar"``
  (:mod:`repro.analysis.store`). ``resume=True`` streams the store
  back, drops torn crash residue, verifies the prefix against the
  campaign's expected scenario stream, and only runs what is missing
  -- a resumed JSONL file is byte-for-byte identical to an
  uninterrupted run, and a resumed columnar store packs to the same
  bytes.
* **Sharding.** Very large single trees (``shard_nodes=``) have their
  scenario slice split into contiguous chunks across the pool; combined
  with the shared-memory transport the workers attach zero-copy to one
  block, so intra-tree fan-out costs O(1) payload per chunk.
"""

from __future__ import annotations

import multiprocessing
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro import registry
from repro.core.prepared import PreparedTree
from repro.core.simulator import simulate
from repro.core.tree import TaskTree
from repro.testing import faults
from repro.workloads.dataset import TreeInstance, PROCESSOR_COUNTS

from .experiments import FailedRecord, ScenarioRecord
from .store import RecordStore, open_store
from .supervisor import CampaignAborted

__all__ = ["Campaign", "Scenario", "run_campaign", "recover_checkpoint"]


@dataclass(frozen=True)
class Scenario:
    """One expanded cell of a campaign grid.

    ``label`` is what lands in :attr:`ScenarioRecord.heuristic` -- the
    bare algorithm name, or ``name@capF`` when a cap factor was applied
    -- and, together with ``(tree, p)``, is the resume key of the
    record.
    """

    tree: str
    algorithm: str
    p: int
    params: tuple[tuple[str, Any], ...] = ()
    label: str = ""

    def key(self) -> tuple[str, str, int]:
        """The checkpoint identity of this scenario's record."""
        return (self.tree, self.label, self.p)


@dataclass(frozen=True)
class Campaign:
    """A declarative experiment grid over the algorithm registry.

    Parameters
    ----------
    algorithms:
        registry names (any kind; sequential traversals run on one
        processor of the ``p``-processor platform like ``repro run``).
    processor_counts:
        the ``p`` sweep (default: the paper's five).
    cap_factors:
        memory-cap sweep, as multiples of the sequential optimal peak.
        Applied to every algorithm that declares a ``cap_factor``
        parameter (``MemoryBounded``, ``MemoryAwareSubtrees``); other
        algorithms run once per ``p`` regardless.
    backend:
        engine sweep backend forwarded to every algorithm that declares
        ``backend`` (bit-identical results either way).
    validate:
        re-check schedule validity inside the simulator (slower).
    """

    algorithms: tuple[str, ...]
    processor_counts: tuple[int, ...] = PROCESSOR_COUNTS
    cap_factors: tuple[float, ...] = ()
    backend: str | None = None
    validate: bool = False

    def scenarios_for(self, tree_name: str) -> list[Scenario]:
        """Expand the grid for one tree (p-major, algorithm-minor,
        cap-innermost -- the historical record order)."""
        out: list[Scenario] = []
        for p in self.processor_counts:
            for name in self.algorithms:
                algo = registry.get(name)  # fails fast on unknown names
                base: dict[str, Any] = {}
                if self.backend is not None and "backend" in algo.params:
                    base["backend"] = self.backend
                if self.cap_factors and "cap_factor" in algo.params:
                    for factor in self.cap_factors:
                        out.append(
                            Scenario(
                                tree=tree_name,
                                algorithm=name,
                                p=int(p),
                                params=tuple(
                                    {**base, "cap_factor": float(factor)}.items()
                                ),
                                label=f"{name}@cap{factor:g}",
                            )
                        )
                else:
                    out.append(
                        Scenario(
                            tree=tree_name,
                            algorithm=name,
                            p=int(p),
                            params=tuple(base.items()),
                            label=name,
                        )
                    )
        return out


# ----------------------------------------------------------------------
# workers: one PreparedTree per (tree, worker), reused across the slice
# ----------------------------------------------------------------------
def _scenario_records(
    name: str,
    prepared: PreparedTree,
    scenarios: Sequence[Scenario],
    validate: bool,
    threads: int | None = None,
    megabatch: bool = True,
) -> list[ScenarioRecord]:
    """Records of one scenario slice against one shared preparation.

    The sequential memory lower bound is computed once per tree and
    shared across every scenario, exactly as in the paper (the bound
    does not depend on ``p``), and every run reuses the prepared rank
    permutations and typed sweep columns.

    With ``megabatch`` (the default) every scenario whose algorithm
    registers a sweep spec is swept in **one batched kernel call**
    (thread-parallel across scenarios; see
    :func:`repro.core.engine.sweep_batch`); the rest -- the
    subtree-splitting family, sequential traversals -- run unbatched at
    their position in the slice. Records (and any scenario error) are
    emitted in slice order either way, so the stream is byte-identical
    to the unbatched path.
    """
    mem_lb = prepared.optimal().peak_memory
    outcomes: dict[int, Any] = {}
    if megabatch:
        from repro.core.engine import sweep_batch

        specs = []
        idxs: list[int] = []
        backend: str | None = None
        for i, sc in enumerate(scenarios):
            params = dict(sc.params)
            spec = registry.get(sc.algorithm).batch_spec(prepared, sc.p, **params)
            if spec is None:
                continue
            b = params.get("backend")
            if not idxs:
                backend = b
            elif b != backend:
                # mixed per-scenario backends (hand-built slices only):
                # batch the leading backend, run the rest unbatched.
                continue
            specs.append(spec)
            idxs.append(i)
        if idxs:
            run = sweep_batch(prepared, specs, backend=backend, threads=threads)
            outcomes = dict(zip(idxs, run.outcomes))
    records: list[ScenarioRecord] = []
    for i, sc in enumerate(scenarios):
        out = outcomes.get(i)
        if out is None:
            schedule = registry.run(sc.algorithm, prepared, sc.p, **dict(sc.params))
        elif isinstance(out, Exception):
            raise out  # at its slice position, exactly as unbatched
        else:
            schedule = out
        result = simulate(schedule, validate=validate)
        records.append(
            ScenarioRecord(
                tree=name,
                n=prepared.n,
                p=sc.p,
                heuristic=sc.label,
                makespan=result.makespan,
                memory=result.peak_memory,
                memory_lb=mem_lb,
                makespan_lb=prepared.makespan_lower_bound(sc.p),
            )
        )
    return records


#: process-local cache of prepared trees for sharded shared-memory
#: groups (several chunks of one tree may land on the same worker).
_PREPARED_CACHE: "OrderedDict[tuple, PreparedTree]" = OrderedDict()
_PREPARED_CACHE_SIZE = 2


def _prepared_cached(key: tuple, tree: TaskTree) -> PreparedTree:
    prepared = _PREPARED_CACHE.get(key)
    if prepared is None:
        prepared = PreparedTree(tree)
        _PREPARED_CACHE[key] = prepared
        while len(_PREPARED_CACHE) > _PREPARED_CACHE_SIZE:
            _PREPARED_CACHE.popitem(last=False)
    else:
        _PREPARED_CACHE.move_to_end(key)
    return prepared


def _campaign_slice(payload: tuple) -> list[ScenarioRecord]:
    """Pool entry point: prepare the payload's tree once, run its slice."""
    if payload[0] == "shm":
        _, shm_name, d, scenarios, validate, threads, megabatch = payload
        shm = _shm_attach(shm_name)
        views = _shm_views(shm.buf, d["base"], d["n"])
        for v in views:  # the block is shared across workers: never writable
            v.setflags(write=False)
        tree = TaskTree(*views)
        prepared = _prepared_cached((shm_name, d["base"]), tree)
        name = d["name"]
    else:
        _, inst, scenarios, validate, threads, megabatch = payload
        prepared = PreparedTree(inst.tree)
        name = inst.name
    return _scenario_records(name, prepared, scenarios, validate, threads, megabatch)


# ----------------------------------------------------------------------
# shared-memory transport: workers attach to one block of tree arrays
# instead of unpickling per-tree copies
# ----------------------------------------------------------------------

#: process-local cache of attached blocks (one entry per pool lifetime).
_SHM_ATTACHED: dict = {}


def _shm_views(buf, base: int, n: int) -> tuple[np.ndarray, ...]:
    """The four typed views of one tree inside a block: ``parent``
    (int64) then ``w``, ``f``, ``sizes`` (float64), contiguous at
    ``base`` -- 32 bytes per node. Single source of truth for the
    layout, used both when packing and when attaching."""
    return (
        np.ndarray(n, dtype=np.int64, buffer=buf, offset=base),
        np.ndarray(n, dtype=np.float64, buffer=buf, offset=base + 8 * n),
        np.ndarray(n, dtype=np.float64, buffer=buf, offset=base + 16 * n),
        np.ndarray(n, dtype=np.float64, buffer=buf, offset=base + 24 * n),
    )


def _shm_pack(instances: Sequence[TreeInstance]):
    """Copy every instance's tree arrays into one shared-memory block.

    Returns the block and one small picklable descriptor per instance.
    The block is unlinked before re-raising if packing fails partway, so
    aborted campaigns never leave named segments behind.
    """
    from multiprocessing import shared_memory

    total = sum(inst.tree.n for inst in instances) * 32
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        descriptors = []
        base = 0
        for inst in instances:
            t = inst.tree
            for view, src in zip(
                _shm_views(shm.buf, base, t.n), (t.parent, t.w, t.f, t.sizes)
            ):
                view[:] = src
            descriptors.append({"name": inst.name, "n": t.n, "base": base})
            base += 32 * t.n
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return shm, descriptors


def _shm_attach(name: str):
    """Attach to a block once per worker process (cached).

    Ownership stays with the creator: only the parent unlinks. On
    Python < 3.13 attaching *also* registers the block with the
    resource tracker (bpo-38119), which would make a worker's tracker
    consider it leaked and destroy it; suppress that registration
    (newer Pythons expose ``track=False`` for exactly this).
    """
    shm = _SHM_ATTACHED.get(name)
    if shm is None:
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def register(rname, rtype):  # pragma: no cover - trivial shim
                if rtype != "shared_memory":
                    original_register(rname, rtype)

            resource_tracker.register = register
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        _SHM_ATTACHED[name] = shm
    return shm


# ----------------------------------------------------------------------
# resumable checkpoints
# ----------------------------------------------------------------------
def recover_checkpoint(path: str) -> tuple[list[ScenarioRecord | FailedRecord], int]:
    """Read a (possibly crash-truncated) JSONL checkpoint.

    Returns the complete records and the byte offset of the valid
    prefix. Only whole lines terminated by a newline count: a final
    line without its newline is the residue of an interrupted flush and
    is dropped (resuming truncates the file there, so the appended
    continuation stays byte-identical to an uninterrupted run). A
    malformed *complete* line cannot be crash residue and raises
    ``ValueError``. Quarantined scenarios come back as
    :class:`FailedRecord` at their stream positions.
    """
    records, offsets, pos = _recover_with_offsets(path)
    return records, pos


def _recover_with_offsets(
    path: str,
) -> tuple[list[ScenarioRecord | FailedRecord], list[int], int]:
    """:func:`recover_checkpoint` plus the byte offset of each record's
    line (what ``retry_failed`` needs to truncate the file at the first
    quarantined scenario and recompute from there)."""
    import json

    with open(path, "rb") as fh:
        data = fh.read()
    records: list[ScenarioRecord | FailedRecord] = []
    offsets: list[int] = []
    pos = 0
    size = len(data)
    while pos < size:
        nl = data.find(b"\n", pos)
        if nl < 0:
            break  # unterminated final line: crash residue, drop it
        line = data[pos:nl].strip()
        if line:
            try:
                row = json.loads(line)
                record = FailedRecord(**row) if row.get("failed") else ScenarioRecord(**row)
            except (ValueError, TypeError, AttributeError) as exc:
                raise ValueError(
                    f"{path}: malformed record on a complete line "
                    f"(not a truncated tail; the checkpoint is corrupt): {exc}"
                ) from None
            records.append(record)
            offsets.append(pos)
        pos = nl + 1
    return records, offsets, pos


def _split_slices(items: Sequence, parts: int) -> list[Sequence]:
    """Split ``items`` into ``parts`` contiguous, near-equal chunks."""
    parts = max(1, min(parts, len(items)))
    bounds = np.linspace(0, len(items), parts + 1).astype(int)
    return [items[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def run_campaign(
    instances: Iterable[TreeInstance],
    campaign: Campaign,
    *,
    workers: int = 1,
    checkpoint: str | None = None,
    resume: bool = False,
    store: "str | RecordStore | None" = None,
    shared_memory: bool = False,
    chunksize: int = 1,
    progress: bool = False,
    shard_nodes: int | None = None,
    threads: int | None = None,
    megabatch: bool = True,
    supervise: bool = False,
    retries: int = 2,
    timeout: float | None = None,
    backoff: float = 0.25,
    fault_plan: "faults.FaultPlan | None" = None,
    retry_failed: bool = False,
    report: list | None = None,
    pool: "SupervisorPool | None" = None,
    prepare: "Callable[[TreeInstance], PreparedTree] | None" = None,
    abort: "threading.Event | None" = None,
) -> list[ScenarioRecord | FailedRecord]:
    """Execute a campaign grid, optionally resuming a checkpoint.

    Parameters
    ----------
    instances, campaign:
        the trees and the declarative grid to run over them.
    workers:
        multiprocessing pool size; 1 runs in process. Any value yields
        the identical record stream (groups are dispatched and
        collected in order).
    checkpoint:
        JSONL path receiving every record as soon as it exists (flushed
        per record). Without ``resume`` the file is truncated first.
    resume:
        continue a previous run of the *same* campaign from
        ``checkpoint``: completed records are loaded (a truncated final
        line is dropped and overwritten), verified against the expected
        scenario stream, and only missing scenarios are executed. The
        finished file is byte-identical to an uninterrupted run.
    store:
        record-store backend for the checkpoint: ``"jsonl"`` (default
        for ``.jsonl`` paths), ``"columnar"`` (directory of npz column
        segments + JSONL tail; see :mod:`repro.analysis.store`) or
        ``"parquet"`` (requires pyarrow), or a ready
        :class:`~repro.analysis.store.RecordStore` instance (then
        ``checkpoint`` may be omitted). Every backend honours the same
        crash-safe resume contract, and the record *stream* is
        identical across backends (property-tested) -- columnar runs
        pack back to byte-identical JSONL.
    shared_memory:
        ship tree arrays to workers through one
        ``multiprocessing.shared_memory`` block (zero-copy attach).
    chunksize:
        work units per pool task.
    progress:
        print one line per completed tree.
    shard_nodes:
        when set and ``workers > 1``, trees with at least this many
        nodes have their scenario slice split across up to ``workers``
        contiguous chunks (each chunk re-prepares the tree, so this
        pays off when the per-scenario work dominates the preparation
        -- very large trees, many scenarios). Record order is
        unchanged.
    threads:
        worker threads of the megabatch kernel call (default:
        ``REPRO_NUM_THREADS`` or the usable core count). Never affects
        results. With a worker pool, each worker threads its own
        batches, so pick ``workers * threads <= cores``.
    megabatch:
        sweep each tree's batchable scenarios in one thread-parallel
        kernel call (default). ``False`` restores the per-scenario
        loop; the record stream is byte-identical either way.
    supervise:
        run the grid under the fault-tolerant worker pool of
        :mod:`repro.analysis.supervisor`: dedicated worker processes
        with crash/hang detection, per-scenario retries with
        exponential backoff, quarantine of poison scenarios as
        :class:`FailedRecord` stream entries, and per-worker backend
        health probing with graceful degradation (c -> numba ->
        python). Scenarios are dispatched one at a time (``megabatch``
        and ``shard_nodes`` do not apply); the record stream -- and the
        checkpoint -- is byte-identical to the unsupervised modes.
    retries:
        supervised mode: how many times a scenario is *re*-tried after
        an environmental failure (crash, timeout, transient error)
        before being quarantined; deterministic scheduler errors
        (infeasible caps, bad parameters) quarantine immediately.
    timeout:
        supervised mode: per-scenario wall-clock budget in seconds;
        a worker exceeding it is killed and the scenario retried.
    backoff:
        supervised mode: base of the exponential retry delay
        (``backoff * 2**(attempt-1)`` seconds).
    fault_plan:
        deterministic fault injection
        (:class:`repro.testing.faults.FaultPlan`) for the chaos tests
        and the hidden ``--fault-plan`` CLI flag; default: the
        ``REPRO_FAULT_PLAN`` environment variable, if set.
    retry_failed:
        on resume, do not skip quarantined scenarios: the checkpoint
        is truncated at the first :class:`FailedRecord` and everything
        from there is recomputed, healing the file to byte-identity
        with a fault-free run (when the fault is gone).
    report:
        optional mutable list; supervised runs append their
        :class:`~repro.analysis.supervisor.RunReport` (per-scenario
        attempts, backend fallbacks, respawns, timings).
    pool:
        a live :class:`~repro.analysis.supervisor.SupervisorPool` to
        execute on (implies ``supervise``); the pool's workers,
        backend choice and fault plan are reused across campaigns, so
        a long-lived caller (the scheduling service) pays spawn +
        probe + kernel warm-up once, not once per job.
    prepare:
        in-process runs only: a ``TreeInstance -> PreparedTree``
        provider replacing the per-group ``PreparedTree(inst.tree)``
        construction -- the service plugs its process-wide LRU in
        here. Results are unaffected (a PreparedTree is immutable
        apart from its leased scratch rows).
    abort:
        a ``threading.Event``; once set, the run stops between
        scenarios (supervised) or work units (in-process / pooled)
        by raising :class:`~repro.analysis.supervisor.CampaignAborted`.
        Everything already emitted is in the checkpoint, so a resumed
        run continues exactly where the aborted one stopped.
    """
    instances = list(instances)
    groups = [campaign.scenarios_for(inst.name) for inst in instances]
    done = [0] * len(groups)
    loaded: list[list[ScenarioRecord | FailedRecord]] = [[] for _ in groups]

    ckstore: RecordStore | None = None
    if isinstance(store, RecordStore):
        ckstore = store
    elif checkpoint is not None:
        ckstore = open_store(checkpoint, backend=store or "auto")
    elif store not in (None, "auto"):
        raise ValueError(
            "store=... names a backend and therefore needs a checkpoint "
            "path; pass a RecordStore instance to omit the path"
        )

    if ckstore is not None:
        if resume and ckstore.exists():
            # Streaming prefix-verify: records are checked against the
            # expected scenario stream one at a time (never materialising
            # the checkpoint), then the store is truncated to the verified
            # prefix -- which also drops torn crash residue.
            expected = [(gi, sc) for gi, grp in enumerate(groups) for sc in grp]
            recovered = ckstore.recover()
            keep = 0
            for k, record in enumerate(recovered):
                if retry_failed and isinstance(record, FailedRecord):
                    break  # recompute from the first quarantined scenario
                if k >= len(expected):
                    total = k + 1 + sum(1 for _ in recovered)
                    raise ValueError(
                        f"checkpoint {ckstore.path!r} holds {total} records but "
                        f"the campaign expands to {len(expected)} scenarios; it "
                        "was not produced by this campaign"
                    )
                gi, sc = expected[k]
                if (record.tree, record.heuristic, record.p) != sc.key():
                    raise ValueError(
                        f"checkpoint {ckstore.path!r} diverges from this campaign at "
                        f"record {k}: found ({record.tree!r}, {record.heuristic!r}, "
                        f"p={record.p}), expected {sc.key()}"
                    )
                loaded[gi].append(record)
                done[gi] += 1
                keep = k + 1
            ckstore.truncate(keep)
        else:
            ckstore.reset()  # truncate: the stream restarts

    # Work units: (group index, remaining scenario slice); large trees
    # are sharded into several contiguous units of the same group.
    units: list[tuple[int, Sequence[Scenario]]] = []
    for gi, (inst, grp) in enumerate(zip(instances, groups)):
        rest = grp[done[gi] :]
        if not rest:
            continue
        shards = 1
        if workers > 1 and shard_nodes is not None and inst.tree.n >= shard_nodes:
            shards = min(workers, len(rest))
        for chunk in _split_slices(rest, shards):
            units.append((gi, chunk))

    computed: list[list[ScenarioRecord | FailedRecord]] = [[] for _ in groups]
    remaining_units = [0] * len(groups)
    for gi, _ in units:
        remaining_units[gi] += 1

    def consume(results: Iterable[list[ScenarioRecord]]) -> None:
        for (gi, _), recs in zip(units, results):
            if abort is not None and abort.is_set():
                raise CampaignAborted(
                    f"campaign aborted with {remaining_units[gi]} unit(s) "
                    f"of {instances[gi].name} outstanding"
                )
            computed[gi].extend(recs)
            if ckstore is not None:
                ckstore.append(recs)
            remaining_units[gi] -= 1
            if progress and remaining_units[gi] == 0:  # pragma: no cover - cosmetic
                print(f"  done {instances[gi].name} (n={instances[gi].tree.n})")

    if supervise or pool is not None:
        from .supervisor import run_supervised

        # Per-scenario dispatch: the units flatten back into the exact
        # campaign stream (sharding only splits, never reorders).
        tasks = [(gi, sc) for gi, chunk in units for sc in chunk]
        left = [len(grp) - done[gi] for gi, grp in enumerate(groups)]

        def emit(gi: int, record: ScenarioRecord | FailedRecord) -> None:
            computed[gi].append(record)
            if ckstore is not None:
                ckstore.append([record])
            left[gi] -= 1
            if progress and left[gi] == 0:  # pragma: no cover - cosmetic
                print(f"  done {instances[gi].name} (n={instances[gi].tree.n})")

        # Install a programmatic plan parent-side too, so checkpoint
        # appends (which happen in this process) see truncate faults.
        if fault_plan is not None:
            faults.install(fault_plan)
        try:
            if pool is not None:
                run_report = pool.run(
                    instances,
                    tasks,
                    validate=campaign.validate,
                    retries=retries,
                    timeout=timeout,
                    backoff=backoff,
                    shared_memory=shared_memory,
                    emit=emit,
                    abort=abort,
                )
            else:
                run_report = run_supervised(
                    instances,
                    tasks,
                    validate=campaign.validate,
                    backend=campaign.backend,
                    workers=max(1, workers),
                    retries=retries,
                    timeout=timeout,
                    backoff=backoff,
                    fault_plan=fault_plan,
                    shared_memory=shared_memory,
                    emit=emit,
                    abort=abort,
                )
        finally:
            if fault_plan is not None:
                faults.install(None)
        if report is not None:
            report.append(run_report)
    elif workers > 1 and units:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        if shared_memory:
            need = sorted({gi for gi, _ in units})
            shm, descriptors = _shm_pack([instances[gi] for gi in need])
            desc_of = dict(zip(need, descriptors))
            try:
                payloads = [
                    (
                        "shm",
                        shm.name,
                        desc_of[gi],
                        tuple(chunk),
                        campaign.validate,
                        threads,
                        megabatch,
                    )
                    for gi, chunk in units
                ]
                with ctx.Pool(processes=workers) as pool:
                    consume(pool.imap(_campaign_slice, payloads, chunksize=chunksize))
            finally:
                shm.close()
                shm.unlink()
        else:
            payloads = [
                (
                    "inst",
                    instances[gi],
                    tuple(chunk),
                    campaign.validate,
                    threads,
                    megabatch,
                )
                for gi, chunk in units
            ]
            with ctx.Pool(processes=workers) as pool:
                # imap (not imap_unordered): chunks complete out of order
                # but are *collected* in submission order, so the record
                # stream is byte-identical to the serial run.
                consume(pool.imap(_campaign_slice, payloads, chunksize=chunksize))
    else:
        # In-process: one preparation per tree, shared across its units.
        def run_serial():
            prepared_group = -1
            prepared = None
            for gi, chunk in units:
                if gi != prepared_group:
                    inst = instances[gi]
                    prepared = (
                        prepare(inst) if prepare is not None
                        else PreparedTree(inst.tree)
                    )
                    prepared_group = gi
                yield _scenario_records(
                    instances[gi].name,
                    prepared,
                    chunk,
                    campaign.validate,
                    threads,
                    megabatch,
                )

        consume(run_serial())

    if ckstore is not None:
        ckstore.finalize()  # columnar: seal the tail for pure-array reads
    records: list[ScenarioRecord | FailedRecord] = []
    for gi in range(len(groups)):
        records.extend(loaded[gi])
        records.extend(computed[gi])
    return records
