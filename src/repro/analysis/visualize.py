"""ASCII visualization: tree structure and memory profiles.

Terminal-friendly renderings used by the examples and handy when
debugging a scheduler: a box-drawing tree view annotated with weights,
and a time/memory area chart of a schedule's profile with the peak and
the sequential bound marked.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Schedule
from repro.core.simulator import memory_profile
from repro.core.tree import TaskTree

__all__ = ["render_tree", "render_memory_profile"]


def render_tree(tree: TaskTree, max_nodes: int = 64, weights: bool = True) -> str:
    """Box-drawing rendering of the tree (root at the top).

    Nodes beyond ``max_nodes`` (in a breadth-biased traversal) are
    elided with an ellipsis marker so huge trees stay readable.
    """
    lines: list[str] = []
    budget = max_nodes

    def label(i: int) -> str:
        if not weights:
            return str(i)
        return f"{i} (w={tree.w[i]:g}, f={tree.f[i]:g}, n={tree.sizes[i]:g})"

    def walk(node: int, prefix: str, is_last: bool, is_root: bool) -> None:
        nonlocal budget
        if budget <= 0:
            return
        budget -= 1
        if is_root:
            lines.append(label(node))
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + label(node))
            child_prefix = prefix + ("    " if is_last else "|   ")
        kids = tree.children(node)
        for k, c in enumerate(kids):
            if budget <= 0:
                lines.append(child_prefix + "`-- ...")
                return
            walk(c, child_prefix, k == len(kids) - 1, False)

    walk(tree.root, "", True, True)
    if budget <= 0:
        lines.append(f"... ({tree.n} nodes total)")
    return "\n".join(lines)


def render_memory_profile(
    schedule: Schedule,
    width: int = 70,
    height: int = 12,
    reference: float | None = None,
) -> str:
    """Area chart of the resident memory over time.

    ``reference`` (e.g. the sequential optimum) is drawn as a dashed
    line when it falls inside the chart.
    """
    times, levels = memory_profile(schedule)
    span = schedule.makespan
    if span <= 0:
        span = 1.0
    top = float(levels.max()) if levels.size else 1.0
    if reference is not None:
        top = max(top, reference)
    top = max(top, 1e-9)
    # sample the piecewise-constant profile at column midpoints
    samples = np.empty(width)
    for col in range(width):
        t = (col + 0.5) / width * span
        k = int(np.searchsorted(times, t, side="right") - 1)
        samples[col] = levels[k] if k >= 0 else 0.0
    rows: list[str] = []
    for r in range(height, 0, -1):
        threshold = top * (r - 0.5) / height
        row = []
        ref_row = (
            reference is not None
            and abs(reference - top * r / height) <= top / (2 * height)
        )
        for col in range(width):
            if samples[col] >= threshold:
                row.append("#")
            elif ref_row:
                row.append("-")
            else:
                row.append(" ")
        rows.append(f"{top * r / height:>10.4g} |" + "".join(row))
    rows.append(" " * 11 + "+" + "-" * width)
    rows.append(f"{'':11s}0{'':{width - 10}}t={span:<8.4g}")
    if reference is not None:
        rows.append(f"reference level (dashes): {reference:g}")
    rows.append(f"peak: {float(levels.max()) if levels.size else 0:g}")
    return "\n".join(rows)
