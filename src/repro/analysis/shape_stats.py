"""Data-set shape statistics (the paper's Section 6.2 summary).

The paper characterises its 608 assembly trees by node count
(2,000-1,000,000), depth (12-70,000) and maximum degree (2-175,000).
This module computes the same summary for any tree set, so EXPERIMENTS.md
can report our data set side by side with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.workloads.dataset import TreeInstance

__all__ = ["ShapeSummary", "summarize_shapes", "render_shape_table"]


@dataclass(frozen=True)
class ShapeSummary:
    """Min/median/max of one shape statistic over a tree set."""

    name: str
    minimum: float
    median: float
    maximum: float


def summarize_shapes(instances: Sequence[TreeInstance]) -> list[ShapeSummary]:
    """Node count, depth, max degree and leaf count over the data set."""
    if not instances:
        raise ValueError("empty data set")
    stats = {
        "nodes": [inst.tree.n for inst in instances],
        "depth": [inst.tree.height() for inst in instances],
        "max degree": [inst.tree.max_degree() for inst in instances],
        "leaves": [inst.tree.n_leaves() for inst in instances],
    }
    return [
        ShapeSummary(
            name=name,
            minimum=float(np.min(vals)),
            median=float(np.median(vals)),
            maximum=float(np.max(vals)),
        )
        for name, vals in stats.items()
    ]


_PAPER_SHAPES = {
    "nodes": (2_000, None, 1_000_000),
    "depth": (12, None, 70_000),
    "max degree": (2, None, 175_000),
}


def render_shape_table(summaries: Sequence[ShapeSummary]) -> str:
    """ASCII table of the shape summary, with the paper's ranges."""
    lines = [
        f"{'statistic':<12s} {'min':>9s} {'median':>9s} {'max':>9s} {'paper range':>18s}"
    ]
    for s in summaries:
        paper = _PAPER_SHAPES.get(s.name)
        paper_txt = f"{paper[0]:,} - {paper[2]:,}" if paper else "-"
        lines.append(
            f"{s.name:<12s} {s.minimum:>9g} {s.median:>9g} {s.maximum:>9g} "
            f"{paper_txt:>18s}"
        )
    return "\n".join(lines)
