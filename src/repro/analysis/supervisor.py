"""Supervised campaign execution: a fault-tolerant worker pool.

The plain pool path of :func:`repro.analysis.campaign.run_campaign`
trusts its workers: a crashed or wedged process hangs the whole
``pool.imap`` collection loop and loses every record after the last
flushed chunk. This module replaces that trust with supervision. Each
worker is a dedicated ``multiprocessing.Process`` with its **own task
queue** and a shared result queue; the supervisor assigns exactly one
scenario to a worker at a time, so when a worker dies its in-flight
casualty is known precisely, and when it wedges past the per-scenario
timeout it is killed and its scenario re-queued.

Failure policy
--------------
* **Crashes / timeouts / environmental errors** (a worker OOM-killed,
  a ``MemoryError``, an injected ``os._exit``) charge one attempt and
  the scenario is retried with bounded exponential backoff
  (``backoff * 2**(attempt-1)`` seconds) on the next free worker.
* **Deterministic scheduler errors** (``MemoryCapError`` -- an
  infeasible cap -- ``ValueError``/``TypeError``/``KeyError``) would
  fail identically on every retry and are quarantined immediately.
* A scenario that exhausts ``retries + 1`` attempts is **quarantined**:
  a structured :class:`~repro.analysis.experiments.FailedRecord` takes
  its position in the record stream (and the checkpoint store --
  JSONL or columnar, written parent-side by the campaign's emit), so a
  resumed campaign deterministically skips it -- or heals it with
  ``retry_failed=True``.

Determinism
-----------
Schedulers are deterministic and all sweep backends are bit-identical,
so a scenario's record does not depend on which worker (or which
attempt) produced it. The supervisor exploits this: results are
accepted even from workers that were already killed for a timeout, and
records are emitted strictly in the campaign's scenario-stream order
through a write cursor -- which is what makes a supervised run's
checkpoint **byte-identical** to the plain pool's, faults or not
(property-tested by the chaos suite).

Backend degradation
-------------------
The first worker probes the backend chain at startup
(:func:`repro.core.engine.probe_backend`): the requested backend is
health-checked with a real two-node sweep and, on failure, the chain
degrades c -> numba -> python. The decision is cached on the pool and
handed to every later spawn (respawns after a crash, extra workers,
workers of later runs), which therefore skip the probe entirely; each
worker's backend (with every skipped backend and its reason) is
recorded in the :class:`RunReport`, and pinned into every scenario of
algorithms that declare a ``backend`` parameter.

Persistent pools
----------------
:class:`SupervisorPool` keeps its workers alive across runs, which is
what a long-lived caller (the scheduling service) needs: tree
preparation, backend probing and kernel compilation are paid once per
worker, not once per job. Every ``run()`` opens a new *epoch*; workers
are told via a ``("begin", epoch, ...)`` control message (which also
clears their per-run prepared-tree cache, since group indices are
per-run), every task and result message carries the epoch, and the
supervisor drops any result tagged with a stale epoch -- so a run
aborted mid-flight can never leak records into the next one.
:func:`run_supervised` remains the one-shot wrapper: build a pool, run
once, tear it down.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro import registry
from repro.core.engine import MemoryCapError, probe_backend
from repro.core.prepared import PreparedTree
from repro.core.simulator import simulate
from repro.core.tree import TaskTree
from repro.testing import faults
from repro.workloads.dataset import TreeInstance

from .experiments import FailedRecord, ScenarioRecord

__all__ = [
    "AttemptLog",
    "CampaignAborted",
    "RunReport",
    "ScenarioReport",
    "SupervisorPool",
    "run_supervised",
]

#: errors that are a deterministic function of the scenario: retrying
#: cannot change the outcome, so the scenario is quarantined at once.
_DETERMINISTIC = (MemoryCapError, ValueError, TypeError, KeyError)

#: how long a worker gets from spawn to its "ready" message before the
#: supervisor declares it stillborn (first startup may compile the C
#: kernel, so this is generous).
_READY_TIMEOUT = 300.0


class CampaignAborted(RuntimeError):
    """A run's ``abort`` event was set: the run stopped between
    scenarios. Everything emitted before the abort is already in the
    checkpoint, so a resumed run continues exactly where this one
    stopped."""


# ----------------------------------------------------------------------
# run report
# ----------------------------------------------------------------------
@dataclass
class AttemptLog:
    """One attempt at one scenario, as the supervisor saw it."""

    attempt: int
    worker: int
    status: str  # "ok" | "error" | "crash" | "timeout"
    detail: str = ""
    seconds: float = 0.0


@dataclass
class ScenarioReport:
    """Per-scenario attempt history (``key`` is ``"tree|label|p"``)."""

    key: str
    status: str = "ok"  # "ok" | "failed"
    attempts: list[AttemptLog] = field(default_factory=list)


@dataclass
class RunReport:
    """What the supervised run did beyond the record stream itself."""

    workers: int = 0
    backends: list[tuple[int, str, list[tuple[str, str]]]] = field(
        default_factory=list
    )  # (worker id, chosen backend, skipped [(backend, reason), ...])
    scenarios: list[ScenarioReport] = field(default_factory=list)
    respawns: int = 0
    probes: int = 0  # workers that ran a live backend probe this run
    elapsed: float = 0.0

    @property
    def quarantined(self) -> list[ScenarioReport]:
        return [s for s in self.scenarios if s.status == "failed"]

    @property
    def retried(self) -> list[ScenarioReport]:
        return [s for s in self.scenarios if len(s.attempts) > 1]

    @property
    def fallbacks(self) -> list[tuple[int, str, list[tuple[str, str]]]]:
        """Workers that did not get their first-choice backend."""
        return [row for row in self.backends if row[2]]

    def summary(self) -> str:
        """A human-readable digest for ``repro campaign --report``."""
        lines = [
            f"supervised run: {len(self.scenarios)} scenarios, "
            f"{self.workers} worker(s), {self.respawns} respawn(s), "
            f"{self.elapsed:.2f}s"
        ]
        for wid, chosen, skipped in self.backends:
            note = "".join(f"; skipped {b}: {why}" for b, why in skipped)
            lines.append(f"  worker {wid}: backend {chosen}{note}")
        for s in self.retried:
            trail = ", ".join(a.status for a in s.attempts)
            lines.append(f"  retried {s.key}: {trail}")
        for s in self.quarantined:
            last = s.attempts[-1].detail if s.attempts else ""
            lines.append(
                f"  quarantined {s.key} after {len(s.attempts)} attempt(s): {last}"
            )
        if not self.retried and not self.quarantined:
            lines.append("  no retries, no quarantines")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _prepared_for(
    transport: tuple, gi: int, cache: "OrderedDict[int, tuple]"
) -> tuple[PreparedTree, str, float]:
    """The (prepared tree, name, memory lower bound) of group ``gi``,
    cached per worker (campaign streams are grouped by tree, so a tiny
    LRU keeps the preparation cost at one per (tree, worker))."""
    ent = cache.get(gi)
    if ent is None:
        if transport[0] == "shm":
            from .campaign import _shm_attach, _shm_views

            _, shm_name, descriptors = transport
            d = descriptors[gi]
            shm = _shm_attach(shm_name)
            views = _shm_views(shm.buf, d["base"], d["n"])
            for v in views:  # shared across workers: never writable
                v.setflags(write=False)
            prepared = PreparedTree(TaskTree(*views))
            name = d["name"]
        else:
            inst = transport[1][gi]
            prepared = PreparedTree(inst.tree)
            name = inst.name
        ent = (prepared, name, prepared.optimal().peak_memory)
        cache[gi] = ent
        while len(cache) > 2:
            cache.popitem(last=False)
    else:
        cache.move_to_end(gi)
    return ent

def _worker_main(
    wid: int,
    task_q,
    result_q,
    backend_request: str | None,
    plan_json: str | None,
    probed: tuple | None,
) -> None:
    """Supervised worker: probe (or adopt the pool's cached probe),
    then run scenarios until the ``None`` sentinel.

    The task queue interleaves ``("begin", epoch, transport, validate)``
    control messages -- one per run, resetting the prepared cache --
    with ``("task", epoch, seq, gi, sc, attempt)`` assignments. Every
    message is ``put`` *before* the next blocking ``get`` on the task
    queue, and the supervisor only assigns the next scenario after
    consuming the previous result -- so an injected crash (which fires
    before any message of its scenario) can never tear a message of an
    earlier scenario out of the queue's feeder thread.
    """
    faults.install(faults.FaultPlan.from_json(plan_json) if plan_json else None)
    if probed is not None:
        chosen, skipped = probed[0], [tuple(s) for s in probed[1]]
        did_probe = False
    else:
        try:
            chosen, skipped = probe_backend(backend_request)
        except Exception as exc:  # no usable backend at all: abort the run
            result_q.put(("fatal", wid, f"{type(exc).__name__}: {exc}"))
            return
        did_probe = True
    result_q.put(("ready", wid, chosen, skipped, did_probe))
    epoch = 0
    transport: tuple = ("inst", [])
    validate = False
    cache: "OrderedDict[int, tuple]" = OrderedDict()
    parent = os.getppid()
    while True:
        try:
            msg = task_q.get(timeout=5.0)
        except queue_mod.Empty:
            # Reparented means the supervisor is gone (e.g. SIGKILLed
            # mid-run). Exit instead of lingering as an orphan holding
            # inherited fds -- a killed server's port must free up for
            # the restarted one.
            if os.getppid() != parent:
                return
            continue
        if msg is None:
            return
        if msg[0] == "begin":
            _, epoch, transport, validate = msg
            cache.clear()  # group indices are per-run
            continue
        _, ep, seq, gi, sc, attempt = msg
        key = faults.scenario_key(sc.tree, sc.label, sc.p)
        faults.maybe_crash(key, seq, attempt)
        result_q.put(("start", wid, ep, seq, attempt))
        faults.maybe_slow(key, seq, attempt)
        t0 = time.monotonic()
        try:
            prepared, name, mem_lb = _prepared_for(transport, gi, cache)
            params = registry.apply_backend(sc.algorithm, dict(sc.params), chosen)
            schedule = registry.run(sc.algorithm, prepared, sc.p, **params)
            result = simulate(schedule, validate=validate)
            record = ScenarioRecord(
                tree=name,
                n=prepared.n,
                p=sc.p,
                heuristic=sc.label,
                makespan=result.makespan,
                memory=result.peak_memory,
                memory_lb=mem_lb,
                makespan_lb=prepared.makespan_lower_bound(sc.p),
            )
            result_q.put(
                ("ok", wid, ep, seq, attempt, record, time.monotonic() - t0)
            )
        except Exception as exc:
            result_q.put(
                (
                    "err",
                    wid,
                    ep,
                    seq,
                    attempt,
                    f"{type(exc).__name__}: {exc}",
                    isinstance(exc, _DETERMINISTIC),
                    time.monotonic() - t0,
                )
            )


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------
class _Worker:
    """Supervisor-side handle of one worker process."""

    __slots__ = (
        "wid",
        "proc",
        "task_q",
        "ready",
        "busy",
        "deadline",
        "timed_out",
        "born",
        "chosen",
        "skipped",
    )

    def __init__(self, wid: int, proc, task_q, now: float) -> None:
        self.wid = wid
        self.proc = proc
        self.task_q = task_q
        self.ready = False
        self.busy: int | None = None  # seq currently assigned
        self.deadline: float | None = None
        self.timed_out = False
        self.born = now
        self.chosen: str | None = None
        self.skipped: list[tuple[str, str]] = []


class SupervisorPool:
    """A persistent supervised worker pool, reusable across runs.

    Workers survive between :meth:`run` calls, so a sequence of runs
    (the scheduling service's job queue) pays spawn + backend probe +
    kernel warm-up once per worker rather than once per run. The fault
    plan is fixed at construction (``fault_plan=None`` adopts the
    process's installed plan, e.g. from ``REPRO_FAULT_PLAN``) and is
    re-installed into every respawned worker. Call :meth:`close` (or
    use the pool as a context manager) to tear the workers down.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        backend: str | None = None,
        fault_plan: "faults.FaultPlan | None" = None,
        poll: float = 0.05,
    ) -> None:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        self._ctx = ctx
        self.workers = max(1, workers)
        self.backend = backend
        self.poll = poll
        plan = fault_plan if fault_plan is not None else faults.active_plan()
        self._plan_json = plan.to_json() if plan is not None else None
        # SimpleQueue, deliberately: a regular mp.Queue sends through a
        # background feeder thread that holds the queue's shared write
        # lock while flushing -- an injected os._exit in the worker's
        # main thread can kill the process at the exact instant its
        # feeder holds that lock, leaking the semaphore and wedging
        # every later worker's messages (a respawn's "ready" included).
        # SimpleQueue writes synchronously in the calling thread, and a
        # single-threaded worker can only crash *between* puts.
        self._result_q = ctx.SimpleQueue()
        self._pool: list[_Worker] = []
        self._spawned = 0  # lifetime spawn counter (worker ids)
        self._epoch = 0
        self._probed: tuple | None = None  # (chosen, ((backend, why), ...))
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "SupervisorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Send sentinels, join the workers, drop the queues."""
        if self._closed:
            return
        self._closed = True
        for w in self._pool:
            if w.proc.is_alive():
                try:
                    w.task_q.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + 2.0
        for w in self._pool:
            w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():  # pragma: no cover - stragglers
                w.proc.kill()
                w.proc.join()
            w.task_q.close()
            w.task_q.cancel_join_thread()
        self._pool = []
        self._result_q.close()

    def _spawn(self) -> _Worker:
        wid = self._spawned
        self._spawned += 1
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                wid,
                task_q,
                self._result_q,
                self.backend,
                self._plan_json,
                self._probed,
            ),
            daemon=True,
        )
        proc.start()
        return _Worker(wid, proc, task_q, time.monotonic())

    # -- one run --------------------------------------------------------
    def run(
        self,
        instances: Sequence[TreeInstance],
        tasks: Sequence[tuple[int, Any]],
        *,
        validate: bool = False,
        retries: int = 2,
        timeout: float | None = None,
        backoff: float = 0.25,
        shared_memory: bool = False,
        emit: Callable[[int, Any], None],
        abort=None,
    ) -> RunReport:
        """Run ``tasks`` (a ``(group index, Scenario)`` stream) supervised.

        ``emit(gi, record)`` is called once per scenario **in stream
        order** with a :class:`ScenarioRecord` or (for quarantined
        scenarios) a :class:`FailedRecord`. ``abort`` is an optional
        ``threading.Event``; once set, the run raises
        :class:`CampaignAborted` at the next loop turn (in-flight
        workers finish their scenario in the background and the epoch
        filter discards the stale results). Returns the
        :class:`RunReport`. Raises ``RuntimeError`` if no worker can
        find a usable backend or the respawn budget is exhausted.
        """
        if self._closed:
            raise RuntimeError("SupervisorPool is closed")
        t_run = time.monotonic()
        n = len(tasks)
        self._epoch += 1
        epoch = self._epoch
        workers = self.workers
        poll = self.poll

        report = RunReport(workers=workers)
        report.scenarios = [
            ScenarioReport(key=faults.scenario_key(sc.tree, sc.label, sc.p))
            for _, sc in tasks
        ]

        # Scenario state, all indexed by stream position.
        outcome: list[Any] = [None] * n  # ScenarioRecord | FailedRecord
        attempts_used = [0] * n
        eligible = [0.0] * n  # monotonic time a retry becomes runnable
        cursor = 0  # next seq to emit

        shm = None
        if shared_memory and n:
            from .campaign import _shm_pack

            need = sorted({gi for gi, _ in tasks})
            shm, descriptors = _shm_pack([instances[gi] for gi in need])
            transport: tuple = ("shm", shm.name, dict(zip(need, descriptors)))
        else:
            transport = ("inst", list(instances))
        begin = ("begin", epoch, transport, validate)

        spawned_this_run = 0
        max_spawns = workers + n * (retries + 1) + 8

        def spawn() -> _Worker:
            nonlocal spawned_this_run
            if spawned_this_run >= max_spawns:
                raise RuntimeError(
                    f"supervised run exceeded its respawn budget ({max_spawns} "
                    "worker spawns): workers are dying faster than scenarios "
                    "can be charged for it"
                )
            spawned_this_run += 1
            w = self._spawn()
            w.task_q.put(begin)
            return w

        def charge(w: _Worker, status: str, detail: str, seconds: float = 0.0) -> None:
            """Charge the worker's in-flight scenario with a failed attempt."""
            seq = w.busy
            w.busy = None
            w.deadline = None
            if seq is None or outcome[seq] is not None:
                return  # a stale casualty: the scenario already has a result
            attempts_used[seq] += 1
            report.scenarios[seq].attempts.append(
                AttemptLog(attempts_used[seq] - 1, w.wid, status, detail, seconds)
            )
            deterministic = status == "error" and detail.startswith("_det:")
            if deterministic:
                detail = detail[len("_det:"):]
                report.scenarios[seq].attempts[-1].detail = detail
            now = time.monotonic()
            if deterministic or attempts_used[seq] > retries:
                gi, sc = tasks[seq]
                outcome[seq] = FailedRecord(
                    tree=sc.tree,
                    n=instances[gi].tree.n,
                    p=sc.p,
                    heuristic=sc.label,
                    error=detail,
                    attempts=attempts_used[seq],
                )
                report.scenarios[seq].status = "failed"
            else:
                eligible[seq] = now + backoff * (2 ** (attempts_used[seq] - 1))

        result_q = self._result_q
        pool = self._pool
        try:
            # Re-enlist the survivors of previous runs and top the pool
            # up; every live worker gets this run's "begin" first.
            pool = [w for w in pool if w.proc.is_alive()]
            self._pool = pool
            now = time.monotonic()
            for w in pool:
                w.busy = None
                w.deadline = None
                w.timed_out = False
                w.born = now  # a held-over worker is not stillborn
                w.task_q.put(begin)
                if w.ready:  # its "ready" was consumed by an earlier run
                    report.backends.append((w.wid, w.chosen, list(w.skipped)))
            while len(pool) < min(workers, n):
                pool.append(spawn())

            next_probe = 0  # lowest seq that might still need dispatching
            while cursor < n:
                if abort is not None and abort.is_set():
                    raise CampaignAborted(
                        f"run aborted after {cursor}/{n} scenario(s)"
                    )
                now = time.monotonic()

                # 1. assign runnable scenarios to ready idle workers
                idle = [w for w in pool if w.ready and w.busy is None]
                if idle:
                    in_flight = {w.busy for w in pool if w.busy is not None}
                    seq = next_probe
                    for w in idle:
                        while seq < n and (
                            outcome[seq] is not None
                            or seq in in_flight
                            or eligible[seq] > now
                        ):
                            seq += 1
                        if seq >= n:
                            break
                        gi, sc = tasks[seq]
                        w.busy = seq
                        w.deadline = None  # armed on the "start" message
                        w.timed_out = False
                        w.task_q.put(("task", epoch, seq, gi, sc, attempts_used[seq]))
                        in_flight.add(seq)
                        seq += 1
                    # advance the probe past the settled prefix only
                    while next_probe < n and outcome[next_probe] is not None:
                        next_probe += 1

                # 2. drain the result queue (wait one poll tick, slurp)
                msgs = []
                if result_q.empty():
                    time.sleep(poll)
                while not result_q.empty():
                    msgs.append(result_q.get())
                by_wid = {w.wid: w for w in pool}
                for msg in msgs:
                    kind, wid = msg[0], msg[1]
                    w = by_wid.get(wid)
                    if kind == "fatal":
                        raise RuntimeError(f"worker {wid}: {msg[2]}")
                    if kind == "ready":
                        _, _, chosen, skipped, did_probe = msg
                        if did_probe:
                            report.probes += 1
                            if self._probed is None:
                                # later spawns skip the two-node probe
                                self._probed = (chosen, tuple(map(tuple, skipped)))
                        report.backends.append((wid, chosen, list(skipped)))
                        if w is not None:
                            w.ready = True
                            w.chosen = chosen
                            w.skipped = list(skipped)
                        continue
                    ep = msg[2]
                    if ep != epoch:
                        continue  # stale result from an aborted earlier run
                    if kind == "start":
                        _, _, _, seq, attempt = msg
                        if w is not None and w.busy == seq and timeout is not None:
                            w.deadline = time.monotonic() + timeout
                    elif kind == "ok":
                        _, _, _, seq, attempt, record, seconds = msg
                        if outcome[seq] is None:  # accept even from killed workers
                            outcome[seq] = record
                            attempts_used[seq] = attempt + 1
                            report.scenarios[seq].attempts.append(
                                AttemptLog(attempt, wid, "ok", "", seconds)
                            )
                        if w is not None and w.busy == seq:
                            w.busy = None
                            w.deadline = None
                    elif kind == "err":
                        _, _, _, seq, attempt, detail, deterministic, seconds = msg
                        if w is not None and w.busy == seq:
                            charge(
                                w,
                                "error",
                                ("_det:" + detail) if deterministic else detail,
                                seconds,
                            )

                # 3. wedged workers: past their per-scenario deadline -> kill
                now = time.monotonic()
                for w in pool:
                    if w.deadline is not None and now > w.deadline and w.proc.is_alive():
                        w.timed_out = True
                        w.proc.kill()

                # 4. dead workers: charge the in-flight casualty, respawn
                for i, w in enumerate(pool):
                    if w.proc.is_alive():
                        if not w.ready and now - w.born > _READY_TIMEOUT:
                            raise RuntimeError(
                                f"worker {w.wid} produced no ready message within "
                                f"{_READY_TIMEOUT:.0f}s"
                            )
                        continue
                    if w.timed_out:
                        charge(w, "timeout", f"exceeded {timeout:g}s; worker killed")
                    else:
                        code = w.proc.exitcode
                        charge(w, "crash", f"worker died (exit code {code})")
                    w.proc.join()
                    w.task_q.close()
                    w.task_q.cancel_join_thread()
                    remaining = sum(1 for o in outcome if o is None)
                    live = sum(1 for ww in pool if ww.proc.is_alive())
                    if remaining > 0 and live < min(workers, remaining):
                        pool[i] = spawn()
                        report.respawns += 1
                    else:
                        pool[i] = _Worker(w.wid, w.proc, w.task_q, now)  # tombstone

                pool = [w for w in pool if w.proc.is_alive()]
                self._pool = pool
                if not pool and any(o is None for o in outcome):
                    pool.append(spawn())
                    report.respawns += 1

                # 5. advance the write cursor: emit settled prefix in order
                while cursor < n and outcome[cursor] is not None:
                    emit(tasks[cursor][0], outcome[cursor])
                    cursor += 1
        finally:
            self._pool = pool
            if shm is not None:
                # Mappings workers still hold stay valid after unlink
                # (POSIX); their cached views are dropped at the next
                # run's "begin" or at pool close.
                shm.close()
                shm.unlink()

        report.elapsed = time.monotonic() - t_run
        return report


def run_supervised(
    instances: Sequence[TreeInstance],
    tasks: Sequence[tuple[int, Any]],
    *,
    validate: bool = False,
    backend: str | None = None,
    workers: int = 1,
    retries: int = 2,
    timeout: float | None = None,
    backoff: float = 0.25,
    fault_plan: "faults.FaultPlan | None" = None,
    shared_memory: bool = False,
    emit: Callable[[int, Any], None],
    poll: float = 0.05,
    abort=None,
) -> RunReport:
    """One-shot supervised run: build a pool, run once, tear it down.

    See :meth:`SupervisorPool.run` for the contract.
    """
    pool = SupervisorPool(
        workers=workers, backend=backend, fault_plan=fault_plan, poll=poll
    )
    try:
        return pool.run(
            instances,
            tasks,
            validate=validate,
            retries=retries,
            timeout=timeout,
            backoff=backoff,
            shared_memory=shared_memory,
            emit=emit,
            abort=abort,
        )
    finally:
        pool.close()
