"""ASCII rendering of Table 1 (and CSV export).

The layout mirrors the paper's Table 1: per heuristic, the share of
scenarios with best (and within-5%-of-best) memory, the average
deviation from the sequential memory, and the same three columns for the
makespan objective.
"""

from __future__ import annotations

from typing import Sequence

from .metrics import GroupStats, HeuristicStats

__all__ = ["render_table1", "table1_csv", "render_group_table", "group_table_csv"]

_PAPER_TABLE1 = {
    # heuristic: (best mem %, within5 mem %, avg dev seq mem %,
    #             best makespan %, within5 makespan %, avg dev best makespan %)
    "ParSubtrees": (81.1, 85.2, 133.0, 0.2, 14.2, 34.7),
    "ParSubtreesOptim": (49.9, 65.6, 144.8, 1.1, 19.1, 28.5),
    "ParInnerFirst": (19.1, 26.2, 276.5, 37.2, 82.4, 2.6),
    "ParDeepestFirst": (3.0, 9.6, 325.8, 95.7, 99.9, 0.0),
}


def render_table1(stats: Sequence[HeuristicStats], compare_paper: bool = True) -> str:
    """Render Table 1; with ``compare_paper`` the paper's values are
    interleaved below each measured row for side-by-side comparison."""
    header = (
        f"{'Heuristic':<22s} {'best mem':>9s} {'<=5% mem':>9s} {'dev seq mem':>12s} "
        f"{'best mk':>8s} {'<=5% mk':>8s} {'dev best mk':>12s}"
    )
    sep = "-" * len(header)
    lines = [header, sep]
    for s in stats:
        lines.append(
            f"{s.heuristic:<22s} {s.best_memory:>8.1f}% {s.within5_memory:>8.1f}% "
            f"{s.avg_dev_seq_memory:>11.1f}% {s.best_makespan:>7.1f}% "
            f"{s.within5_makespan:>7.1f}% {s.avg_dev_best_makespan:>11.1f}%"
        )
        if compare_paper and s.heuristic in _PAPER_TABLE1:
            p = _PAPER_TABLE1[s.heuristic]
            lines.append(
                f"{'  (paper)':<22s} {p[0]:>8.1f}% {p[1]:>8.1f}% {p[2]:>11.1f}% "
                f"{p[3]:>7.1f}% {p[4]:>7.1f}% {p[5]:>11.1f}%"
            )
    lines.append(sep)
    if stats:
        lines.append(f"scenarios: {stats[0].scenarios}")
    return "\n".join(lines)


def render_group_table(stats: Sequence[GroupStats]) -> str:
    """ASCII table of the (algorithm, n, p, cap) campaign groupby
    (:func:`repro.analysis.metrics.group_stats`): per cell, the record
    count and the mean/max normalised ratios against the two lower
    bounds."""
    header = (
        f"{'algorithm':<22s} {'n':>7s} {'p':>4s} {'cap':>6s} {'count':>6s} "
        f"{'mk/LB mean':>11s} {'mk/LB max':>10s} "
        f"{'mem/Mseq mean':>14s} {'mem/Mseq max':>13s}"
    )
    sep = "-" * len(header)
    lines = [header, sep]
    for s in stats:
        cap = f"{s.cap:g}" if s.cap is not None else "-"
        lines.append(
            f"{s.algorithm:<22s} {s.n:>7d} {s.p:>4d} {cap:>6s} {s.count:>6d} "
            f"{s.mean_makespan_ratio:>11.4f} {s.max_makespan_ratio:>10.4f} "
            f"{s.mean_memory_ratio:>14.4f} {s.max_memory_ratio:>13.4f}"
        )
    lines.append(sep)
    return "\n".join(lines)


def group_table_csv(stats: Sequence[GroupStats]) -> str:
    """CSV form of the campaign groupby (one row per cell)."""
    rows = [
        "algorithm,n,p,cap,count,mean_makespan_ratio,max_makespan_ratio,"
        "mean_memory_ratio,max_memory_ratio"
    ]
    for s in stats:
        cap = f"{s.cap:g}" if s.cap is not None else ""
        rows.append(
            f"{s.algorithm},{s.n},{s.p},{cap},{s.count},"
            f"{s.mean_makespan_ratio:.6g},{s.max_makespan_ratio:.6g},"
            f"{s.mean_memory_ratio:.6g},{s.max_memory_ratio:.6g}"
        )
    return "\n".join(rows)


def table1_csv(stats: Sequence[HeuristicStats]) -> str:
    """CSV form of Table 1 (one row per heuristic)."""
    rows = [
        "heuristic,best_memory_pct,within5_memory_pct,avg_dev_seq_memory_pct,"
        "best_makespan_pct,within5_makespan_pct,avg_dev_best_makespan_pct,scenarios"
    ]
    for s in stats:
        rows.append(
            f"{s.heuristic},{s.best_memory:.2f},{s.within5_memory:.2f},"
            f"{s.avg_dev_seq_memory:.2f},{s.best_makespan:.2f},"
            f"{s.within5_makespan:.2f},{s.avg_dev_best_makespan:.2f},{s.scenarios}"
        )
    return "\n".join(rows)
