"""ASCII rendering of Table 1 (and CSV export).

The layout mirrors the paper's Table 1: per heuristic, the share of
scenarios with best (and within-5%-of-best) memory, the average
deviation from the sequential memory, and the same three columns for the
makespan objective.
"""

from __future__ import annotations

from typing import Sequence

from .metrics import HeuristicStats

__all__ = ["render_table1", "table1_csv"]

_PAPER_TABLE1 = {
    # heuristic: (best mem %, within5 mem %, avg dev seq mem %,
    #             best makespan %, within5 makespan %, avg dev best makespan %)
    "ParSubtrees": (81.1, 85.2, 133.0, 0.2, 14.2, 34.7),
    "ParSubtreesOptim": (49.9, 65.6, 144.8, 1.1, 19.1, 28.5),
    "ParInnerFirst": (19.1, 26.2, 276.5, 37.2, 82.4, 2.6),
    "ParDeepestFirst": (3.0, 9.6, 325.8, 95.7, 99.9, 0.0),
}


def render_table1(stats: Sequence[HeuristicStats], compare_paper: bool = True) -> str:
    """Render Table 1; with ``compare_paper`` the paper's values are
    interleaved below each measured row for side-by-side comparison."""
    header = (
        f"{'Heuristic':<22s} {'best mem':>9s} {'<=5% mem':>9s} {'dev seq mem':>12s} "
        f"{'best mk':>8s} {'<=5% mk':>8s} {'dev best mk':>12s}"
    )
    sep = "-" * len(header)
    lines = [header, sep]
    for s in stats:
        lines.append(
            f"{s.heuristic:<22s} {s.best_memory:>8.1f}% {s.within5_memory:>8.1f}% "
            f"{s.avg_dev_seq_memory:>11.1f}% {s.best_makespan:>7.1f}% "
            f"{s.within5_makespan:>7.1f}% {s.avg_dev_best_makespan:>11.1f}%"
        )
        if compare_paper and s.heuristic in _PAPER_TABLE1:
            p = _PAPER_TABLE1[s.heuristic]
            lines.append(
                f"{'  (paper)':<22s} {p[0]:>8.1f}% {p[1]:>8.1f}% {p[2]:>11.1f}% "
                f"{p[3]:>7.1f}% {p[4]:>7.1f}% {p[5]:>11.1f}%"
            )
    lines.append(sep)
    if stats:
        lines.append(f"scenarios: {stats[0].scenarios}")
    return "\n".join(lines)


def table1_csv(stats: Sequence[HeuristicStats]) -> str:
    """CSV form of Table 1 (one row per heuristic)."""
    rows = [
        "heuristic,best_memory_pct,within5_memory_pct,avg_dev_seq_memory_pct,"
        "best_makespan_pct,within5_makespan_pct,avg_dev_best_makespan_pct,scenarios"
    ]
    for s in stats:
        rows.append(
            f"{s.heuristic},{s.best_memory:.2f},{s.within5_memory:.2f},"
            f"{s.avg_dev_seq_memory:.2f},{s.best_makespan:.2f},"
            f"{s.within5_makespan:.2f},{s.avg_dev_best_makespan:.2f},{s.scenarios}"
        )
    return "\n".join(rows)
