"""Synthetic random trees, independent of the matrix pipeline.

Used by the property-based tests and the ablation benchmarks to explore
tree-shape regimes the matrix collection may not reach: uniformly random
attachment, depth-biased (chain-like), width-biased (flat), caterpillars,
complete k-ary trees, and Pebble-Game unit-weight variants.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import TaskTree, NO_PARENT

__all__ = [
    "random_attachment_tree",
    "deep_tree",
    "flat_tree",
    "caterpillar",
    "complete_kary_tree",
    "random_weighted_tree",
]


def random_attachment_tree(
    n: int, rng: np.random.Generator | None = None, bias: float = 0.0
) -> np.ndarray:
    """Random recursive tree parent vector on ``n`` nodes (root = 0).

    ``bias`` interpolates the attachment preference: 0 picks a uniform
    existing node (logarithmic depth), positive values prefer recent
    nodes (deeper trees), negative values prefer old nodes (flatter).
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = rng or np.random.default_rng()
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for i in range(1, n):
        if bias == 0.0:
            parent[i] = int(rng.integers(0, i))
        else:
            weights = np.arange(1, i + 1, dtype=np.float64) ** bias
            weights /= weights.sum()
            parent[i] = int(rng.choice(i, p=weights))
    return parent


def deep_tree(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Chain-biased random tree (depth ~ n / log n)."""
    return random_attachment_tree(n, rng, bias=8.0)


def flat_tree(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Width-biased random tree (most nodes near the root)."""
    return random_attachment_tree(n, rng, bias=-8.0)


def caterpillar(spine: int, legs: int) -> np.ndarray:
    """A spine of ``spine`` nodes, each with ``legs`` leaf children."""
    if spine < 1 or legs < 0:
        raise ValueError("need spine >= 1 and legs >= 0")
    parents: list[int] = [NO_PARENT]
    prev = 0
    for s in range(spine):
        if s > 0:
            parents.append(prev)
            prev = len(parents) - 1
        for _ in range(legs):
            parents.append(prev)
    return np.asarray(parents, dtype=np.int64)


def complete_kary_tree(height: int, k: int) -> np.ndarray:
    """Complete ``k``-ary tree of the given height (height 0 = one node)."""
    if height < 0 or k < 1:
        raise ValueError("need height >= 0 and k >= 1")
    parents: list[int] = [NO_PARENT]
    frontier = [0]
    for _ in range(height):
        nxt = []
        for node in frontier:
            for _ in range(k):
                parents.append(node)
                nxt.append(len(parents) - 1)
        frontier = nxt
    return np.asarray(parents, dtype=np.int64)


def random_weighted_tree(
    n: int,
    rng: np.random.Generator | None = None,
    bias: float = 0.0,
    max_w: int = 10,
    max_f: int = 10,
    max_size: int = 5,
) -> TaskTree:
    """A random tree with integer weights drawn uniformly.

    The workhorse of the hypothesis-style randomised tests: every weight
    regime (including zero execution files, the paper's Pebble-Game
    case) is reachable.
    """
    rng = rng or np.random.default_rng()
    parent = random_attachment_tree(n, rng, bias)
    w = rng.integers(1, max_w + 1, n).astype(np.float64)
    f = rng.integers(1, max_f + 1, n).astype(np.float64)
    sizes = rng.integers(0, max_size + 1, n).astype(np.float64)
    return TaskTree(parent, w, f, sizes)
