"""Task-tree serialization: a plain-text exchange format.

The paper's authors published their assembly trees online; this module
defines a compatible-in-spirit plain-text format so trees generated here
can be saved, shared, and reloaded (and real published trees, once
converted, can be scheduled directly):

.. code-block:: text

   # repro tree format v1
   # columns: node parent w f size
   n 5
   0 -1 3.0 0.0 1.0
   1 0 2.0 3.0 0.0
   ...

Node ids are 0-based; the root has parent ``-1``. Comment lines start
with ``#`` and are ignored.
"""

from __future__ import annotations

import gzip
import pathlib
from typing import IO

import numpy as np

from repro.core.tree import TaskTree

__all__ = ["save_tree", "load_tree", "TreeFormatError"]


class TreeFormatError(ValueError):
    """Raised on malformed tree files."""


def _open(path: str | pathlib.Path, mode: str) -> IO:
    path = pathlib.Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_tree(path: str | pathlib.Path, tree: TaskTree) -> None:
    """Write a tree in the v1 plain-text format (gzip if ``.gz``)."""
    with _open(path, "w") as fh:
        fh.write("# repro tree format v1\n")
        fh.write("# columns: node parent w f size\n")
        fh.write(f"n {tree.n}\n")
        for i in range(tree.n):
            fh.write(
                f"{i} {int(tree.parent[i])} {tree.w[i]:.17g} "
                f"{tree.f[i]:.17g} {tree.sizes[i]:.17g}\n"
            )


def load_tree(path: str | pathlib.Path) -> TaskTree:
    """Read a tree written by :func:`save_tree`."""
    with _open(path, "r") as fh:
        n = None
        parent = w = f = sizes = None
        seen = 0
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("n "):
                if n is not None:
                    raise TreeFormatError("duplicate size line")
                n = int(line.split()[1])
                if n < 1:
                    raise TreeFormatError("tree must have at least one node")
                parent = np.empty(n, dtype=np.int64)
                w = np.empty(n, dtype=np.float64)
                f = np.empty(n, dtype=np.float64)
                sizes = np.empty(n, dtype=np.float64)
                continue
            if n is None:
                raise TreeFormatError("node line before the size line")
            parts = line.split()
            if len(parts) != 5:
                raise TreeFormatError(f"expected 5 columns: {line!r}")
            i = int(parts[0])
            if not (0 <= i < n):
                raise TreeFormatError(f"node id {i} out of range")
            parent[i] = int(parts[1])
            w[i] = float(parts[2])
            f[i] = float(parts[3])
            sizes[i] = float(parts[4])
            seen += 1
    if n is None:
        raise TreeFormatError("missing size line")
    if seen != n:
        raise TreeFormatError(f"expected {n} node lines, found {seen}")
    return TaskTree(parent, w, f, sizes)
