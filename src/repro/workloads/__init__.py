"""Workload generation: synthetic random trees and the paper-analog data set."""

from .synthetic import (
    random_attachment_tree,
    deep_tree,
    flat_tree,
    caterpillar,
    complete_kary_tree,
    random_weighted_tree,
)
from .dataset import TreeInstance, build_dataset, PROCESSOR_COUNTS, AMALGAMATIONS
from .trees_io import save_tree, load_tree, TreeFormatError

__all__ = [
    "random_attachment_tree",
    "deep_tree",
    "flat_tree",
    "caterpillar",
    "complete_kary_tree",
    "random_weighted_tree",
    "TreeInstance",
    "build_dataset",
    "PROCESSOR_COUNTS",
    "AMALGAMATIONS",
    "save_tree",
    "load_tree",
    "TreeFormatError",
]
