"""The experimental data set: assembly trees analogous to the paper's 608.

The paper builds 608 assembly trees: 76 UFL matrices x 2 orderings
(MeTiS, amd) x 4 relaxed-amalgamation settings (1, 2, 4, 16). We build
the same cross product over the synthetic matrix collection and our
orderings (nested dissection ~ MeTiS, minimum degree ~ amd, plus RCM for
the deep-chain regime), yielding 64-96 trees per scale with the same
qualitative diversity of shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.tree import TaskTree
from repro.matrices import (
    amalgamate,
    apply_ordering,
    default_collection,
    minimum_degree,
    nested_dissection,
    rcm,
    symbolic_cholesky,
)

__all__ = ["TreeInstance", "build_dataset", "PROCESSOR_COUNTS", "AMALGAMATIONS"]

#: The paper's processor sweep (Section 6.2).
PROCESSOR_COUNTS: tuple[int, ...] = (2, 4, 8, 16, 32)

#: The paper's relaxed-amalgamation sweep.
AMALGAMATIONS: tuple[int, ...] = (1, 2, 4, 16)

_ORDERINGS = {
    "nd": nested_dissection,  # the MeTiS analogue
    "md": minimum_degree,  # the amd analogue
    "rcm": rcm,  # deep chain-like trees
}


@dataclass(frozen=True)
class TreeInstance:
    """One tree of the data set, with its provenance.

    ``name`` encodes matrix, ordering and amalgamation cap, e.g.
    ``grid2d-24/nd/a4``.
    """

    name: str
    tree: TaskTree
    matrix_name: str
    ordering: str
    amalgamation: int
    meta: dict = field(default_factory=dict, compare=False)


def build_dataset(
    scale: str = "small",
    orderings: Iterable[str] = ("nd", "md"),
    amalgamations: Iterable[int] = AMALGAMATIONS,
    seed: int = 2013,
    min_nodes: int = 16,
) -> list[TreeInstance]:
    """Build the full tree data set at the requested scale.

    Parameters
    ----------
    scale:
        collection scale (``tiny`` / ``small`` / ``medium`` / ``large``;
        the ``large`` tier builds much bigger random and multifrontal
        assembly trees -- sized for the parallel batch pipeline, i.e.
        ``run_experiments(..., workers=N)``).
    orderings:
        subset of ``{"nd", "md", "rcm"}`` (default: the paper's two).
    amalgamations:
        relaxed-amalgamation caps (default: the paper's 1, 2, 4, 16).
    seed:
        collection seed; the data set is fully deterministic.
    min_nodes:
        drop assembly trees smaller than this (degenerate instances).
    """
    instances: list[TreeInstance] = []
    for mat in default_collection(scale, seed=seed):
        for oname in orderings:
            order_fn = _ORDERINGS[oname]
            permuted = apply_ordering(mat.matrix, order_fn(mat.matrix))
            sym = symbolic_cholesky(permuted)
            for cap in amalgamations:
                assembly = amalgamate(sym, cap)
                if assembly.tree.n < min_nodes:
                    continue
                instances.append(
                    TreeInstance(
                        name=f"{mat.name}/{oname}/a{cap}",
                        tree=assembly.tree,
                        matrix_name=mat.name,
                        ordering=oname,
                        amalgamation=cap,
                        meta={
                            "matrix_n": mat.n,
                            "tree_n": assembly.tree.n,
                            "height": assembly.tree.height(),
                            "max_degree": assembly.tree.max_degree(),
                        },
                    )
                )
    return instances
