"""Micro-benchmarks of the core algorithms (complexity sanity checks).

These time the individual building blocks on a mid-sized tree so that
``pytest-benchmark``'s statistics catch accidental complexity
regressions (the paper's implementations are O(n log n) except Liu's
exact algorithm at O(n^2)).
"""

import numpy as np
import pytest

from repro.parallel import (
    par_deepest_first,
    par_inner_first,
    par_subtrees,
    par_subtrees_optim,
    split_subtrees,
)
from repro.sequential import liu_optimal_traversal, optimal_postorder
from repro.workloads.synthetic import random_weighted_tree


@pytest.fixture(scope="module")
def tree5k():
    return random_weighted_tree(5000, np.random.default_rng(1))


def test_scaling_optimal_postorder(benchmark, tree5k):
    result = benchmark(optimal_postorder, tree5k)
    assert len(result.order) == tree5k.n


def test_scaling_liu_exact(benchmark, tree5k):
    result = benchmark(liu_optimal_traversal, tree5k)
    assert result.peak_memory <= optimal_postorder(tree5k).peak_memory + 1e-9


def test_scaling_split_subtrees(benchmark, tree5k):
    result = benchmark(split_subtrees, tree5k, 16)
    assert result.cost <= tree5k.total_work() + 1e-9


@pytest.mark.parametrize(
    "heuristic",
    [par_subtrees, par_subtrees_optim, par_inner_first, par_deepest_first],
    ids=["ParSubtrees", "ParSubtreesOptim", "ParInnerFirst", "ParDeepestFirst"],
)
def test_scaling_heuristics(benchmark, tree5k, heuristic):
    schedule = benchmark(heuristic, tree5k, 16)
    assert schedule.makespan >= tree5k.critical_path() - 1e-9
