"""Out-of-core penalty benchmark: the paper's opening argument, measured.

"[An application] depending on the way it is scheduled, will either fit
in the memory, or will require the use of swap mechanisms or out-of-core
techniques" (Section 1). For every tree of the data set we fix the
physical memory at what ParSubtrees needs, then charge disk traffic to
every heuristic exceeding it: the memory-oblivious heuristics pay an
I/O penalty that the memory-aware ones avoid.
"""

import numpy as np

from repro.core.outofcore import simulate_out_of_core
from repro.parallel import HEURISTICS
from .conftest import save_artifact


def test_out_of_core_penalty(benchmark, dataset, artifact_dir):
    p = 8
    sample = dataset[: min(12, len(dataset))]

    def measure():
        stats = {name: [] for name in HEURISTICS}
        for inst in sample:
            tree = inst.tree
            schedules = {name: fn(tree, p) for name, fn in HEURISTICS.items()}
            peaks = {
                name: simulate_out_of_core(sch, memory=float("inf")).io_volume
                for name, sch in schedules.items()
            }
            assert all(v == 0 for v in peaks.values())  # sanity: inf memory
            from repro.core.simulator import peak_memory

            budget = max(
                peak_memory(schedules["ParSubtrees"]),
                max(tree.processing_memory(i) for i in range(tree.n)),
            )
            for name, sch in schedules.items():
                base = sch.makespan
                res = simulate_out_of_core(sch, memory=budget, bandwidth=1.0)
                stats[name].append(res.effective_makespan / base)
        return {name: float(np.mean(v)) for name, v in stats.items()}

    slowdowns = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "effective slowdown under ParSubtrees's memory budget (I/O at bw=1):"
    ]
    for name, s in sorted(slowdowns.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:<20s} {s:.3f}x")
    save_artifact(artifact_dir, "out_of_core_penalty.txt", "\n".join(lines))
    # ParSubtrees fits by construction; the makespan-focused heuristics
    # pay at least as much I/O on average.
    assert slowdowns["ParSubtrees"] == 1.0
    assert slowdowns["ParDeepestFirst"] >= slowdowns["ParSubtrees"]
