"""Scheduling-service benchmark: sustained scenarios/sec over HTTP.

Runs the real stack -- stdlib HTTP server, JSON dispatch, journaled
job store, campaign executor -- against 1 / 4 / 16 concurrent clients
hammering ``POST /jobs`` + poll + fetch, and reports sustained
scheduler throughput (scenarios per second, end to end, journal and
wire included). Each concurrency level is measured twice:

* **cold** -- every job ships trees the service has never seen, so
  each pays full :class:`~repro.core.prepared.PreparedTree`
  construction;
* **warm** -- the same trees resubmitted as new jobs (different run
  policy, so nothing dedupes), landing in the process-wide prepared
  LRU; the delta is the preparation cost the cache saves.

Every job's record count is asserted before timing is reported, and
the per-level cache hit/miss counters are included so a regression in
the LRU shows up as numbers, not vibes. Appends to the shared perf
trajectory::

    PYTHONPATH=src python benchmarks/bench_serve.py --append
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --append
"""

from __future__ import annotations

import argparse
import os
import platform
import shutil
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_engine import write_payload  # noqa: E402

from http.server import ThreadingHTTPServer  # noqa: E402

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.payload import spec_from_instances  # noqa: E402
from repro.service.server import SchedulerService, _make_handler  # noqa: E402
from repro.workloads.dataset import TreeInstance  # noqa: E402
from repro.workloads.synthetic import random_weighted_tree  # noqa: E402

ALGOS = ("ParSubtrees", "ParDeepestFirst")


def make_spec(seed: int, nodes: int, trees: int, procs, retries: int) -> dict:
    rng = np.random.default_rng(seed)
    insts = [
        TreeInstance(
            name=f"b{seed}-{k}",
            tree=random_weighted_tree(nodes, rng),
            matrix_name="bench",
            ordering="none",
            amalgamation=1,
        )
        for k in range(trees)
    ]
    return spec_from_instances(
        insts,
        algorithms=list(ALGOS),
        processor_counts=list(procs),
        supervise=False,  # in-process execution through the prepared LRU
        retries=retries,
    )


def run_level(
    base: str,
    clients: int,
    jobs_per_client: int,
    nodes: int,
    trees: int,
    procs,
    retries: int,
) -> tuple[float, int]:
    """All clients submit all jobs, then wait; returns (seconds, scenarios)."""
    per_job = len(procs) * len(ALGOS) * trees
    results: list[list[str]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []

    def one_client(ci: int) -> None:
        try:
            client = ServiceClient(base, timeout=60.0)
            for j in range(jobs_per_client):
                spec = make_spec(
                    seed=100_000 * ci + j, nodes=nodes, trees=trees,
                    procs=procs, retries=retries,
                )
                results[ci].append(client.submit(spec)["id"])
            for jid in results[ci]:
                st = client.wait(jid, timeout=600.0, poll=0.02)
                assert st["state"] == "done", st
                assert st["records"] == per_job, st
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(ci,)) for ci in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return elapsed, per_job * clients * jobs_per_client


def run_serve_bench(
    levels, jobs_per_client: int, nodes: int, trees: int, procs
) -> list[dict]:
    out = []
    for clients in levels:
        root = tempfile.mkdtemp(prefix="bench-serve-")
        service = SchedulerService(
            root, queue_depth=max(64, clients * jobs_per_client * 2),
            prepared_capacity=4096,
        )
        service.start()
        httpd = ThreadingHTTPServer(("127.0.0.1", 0), _make_handler(service))
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            cold_s, scenarios = run_level(
                base, clients, jobs_per_client, nodes, trees, procs, retries=2
            )
            cold_cache = service.prepared.stats()
            # same trees, new jobs (retries bumps the content key)
            warm_s, _ = run_level(
                base, clients, jobs_per_client, nodes, trees, procs, retries=3
            )
            warm_cache = service.prepared.stats()
            row = {
                "clients": clients,
                "jobs": clients * jobs_per_client,
                "scenarios": scenarios,
                "tree_nodes": nodes,
                "cold_s": round(cold_s, 4),
                "cold_scenarios_per_s": round(scenarios / cold_s, 2),
                "warm_s": round(warm_s, 4),
                "warm_scenarios_per_s": round(scenarios / warm_s, 2),
                "warm_speedup": round(cold_s / warm_s, 2),
                "cache_misses_cold": cold_cache["misses"],
                "cache_hits_warm": warm_cache["hits"] - cold_cache["hits"],
            }
            out.append(row)
            print(
                f"  {clients:>2} client(s): cold {row['cold_scenarios_per_s']:>8} "
                f"warm {row['warm_scenarios_per_s']:>8} scenarios/s "
                f"(x{row['warm_speedup']})"
            )
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain()
            shutil.rmtree(root, ignore_errors=True)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--levels", type=int, nargs="+", default=[1, 4, 16])
    parser.add_argument("--jobs-per-client", type=int, default=2)
    parser.add_argument("--nodes", type=int, default=400)
    parser.add_argument("--trees", type=int, default=2)
    parser.add_argument("--procs", type=int, nargs="+", default=[2, 4, 8])
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--append",
        action="store_true",
        help="append to the output file instead of overwriting it",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grids, levels 1 and 4 only (CI bit-rot guard)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.levels = [1, 4]
        args.jobs_per_client = 1
        args.nodes = 60
        args.procs = [2, 4]
    payload = {
        "benchmark": "serve",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": bool(args.smoke),
        "jobs_per_client": args.jobs_per_client,
        "serve": run_serve_bench(
            args.levels, args.jobs_per_client, args.nodes, args.trees,
            tuple(args.procs),
        ),
    }
    write_payload(args.output, payload, args.append)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
