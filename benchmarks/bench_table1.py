"""Table 1: heuristic comparison over the full data set.

Regenerates the paper's Table 1 -- proportions of scenarios where each
heuristic achieves the best (or within 5% of best) memory and makespan,
plus average deviations -- over the synthetic data set and the paper's
processor sweep. The benchmark time is the cost of the whole campaign.
"""

from repro.analysis import compute_table1_stats, render_table1, run_experiments, table1_csv
from .conftest import bench_processors, save_artifact


def test_table1(benchmark, dataset, artifact_dir):
    def campaign():
        records = run_experiments(dataset, processor_counts=bench_processors())
        return compute_table1_stats(records)

    stats = benchmark.pedantic(campaign, rounds=1, iterations=1)
    text = render_table1(stats)
    save_artifact(artifact_dir, "table1.txt", text)
    save_artifact(artifact_dir, "table1.csv", table1_csv(stats))

    by_name = {s.heuristic: s for s in stats}
    # The paper's qualitative findings must hold on our data set:
    # 1. ParSubtrees leads the memory objective...
    assert by_name["ParSubtrees"].best_memory == max(s.best_memory for s in stats)
    # 2. ...ParDeepestFirst the makespan objective (within ~0.1% of best).
    assert by_name["ParDeepestFirst"].best_makespan == max(
        s.best_makespan for s in stats
    )
    assert by_name["ParDeepestFirst"].avg_dev_best_makespan <= 1.0
    # 3. the memory ordering of the four heuristics is the paper's
    mem_order = sorted(stats, key=lambda s: s.avg_dev_seq_memory)
    assert mem_order[0].heuristic in ("ParSubtrees", "ParSubtreesOptim")
    assert mem_order[-1].heuristic == "ParDeepestFirst"
