"""Guarantee benchmarks: the proven bounds of Section 5, measured.

* ParSubtrees peak memory <= (p+1) * M_seq (+ p*max f slack from the
  proof's retained-outputs term);
* every list scheduler satisfies Graham's bound
  ``Cmax <= W/p + (1-1/p) * CP``;
* the memory ratios of ParInnerFirst / ParDeepestFirst are unbounded in
  general but finite on the data set (reported for context).
"""

import numpy as np

from repro.core.simulator import simulate
from repro.parallel import par_deepest_first, par_inner_first, par_subtrees
from repro.sequential import optimal_postorder
from .conftest import bench_processors, save_artifact


def test_parsubtrees_memory_guarantee(benchmark, dataset, artifact_dir):
    def measure():
        worst = 0.0
        for inst in dataset:
            mseq = optimal_postorder(inst.tree).peak_memory
            fmax = float(inst.tree.f.max())
            for p in bench_processors():
                sim = simulate(par_subtrees(inst.tree, p))
                assert sim.peak_memory <= (p + 1) * mseq + p * fmax + 1e-6
                worst = max(worst, sim.peak_memory / mseq)
        return worst

    worst = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_artifact(
        artifact_dir,
        "guarantee_parsubtrees_memory.txt",
        f"worst observed ParSubtrees memory ratio: {worst:.3f} "
        f"(proved bound: p+1 = {max(bench_processors()) + 1})",
    )
    assert worst <= max(bench_processors()) + 1 + 1e-6


def test_graham_bound(benchmark, dataset, artifact_dir):
    def measure():
        worst = 0.0
        for inst in dataset:
            W = inst.tree.total_work()
            CP = inst.tree.critical_path()
            for p in bench_processors():
                for fn in (par_inner_first, par_deepest_first):
                    sch = fn(inst.tree, p)
                    bound = W / p + (1 - 1 / p) * CP
                    assert sch.makespan <= bound + 1e-6
                    lb = max(W / p, CP)
                    worst = max(worst, sch.makespan / lb)
        return worst

    worst = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_artifact(
        artifact_dir,
        "guarantee_graham.txt",
        f"worst observed list-scheduling makespan ratio vs LB: {worst:.3f} "
        f"(Graham guarantees < 2)",
    )
    assert worst < 2.0 + 1e-9


def test_memory_ratio_spread(benchmark, dataset, artifact_dir):
    """Context: observed memory ratios per heuristic (paper: up to >100)."""

    def measure():
        ratios = {"ParInnerFirst": [], "ParDeepestFirst": []}
        for inst in dataset:
            mseq = optimal_postorder(inst.tree).peak_memory
            for p in bench_processors():
                ratios["ParInnerFirst"].append(
                    simulate(par_inner_first(inst.tree, p)).peak_memory / mseq
                )
                ratios["ParDeepestFirst"].append(
                    simulate(par_deepest_first(inst.tree, p)).peak_memory / mseq
                )
        return {k: (float(np.mean(v)), float(np.max(v))) for k, v in ratios.items()}

    spread = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"{name}: mean ratio {mean:.2f}, max ratio {mx:.2f}"
        for name, (mean, mx) in spread.items()
    ]
    save_artifact(artifact_dir, "guarantee_memory_spread.txt", "\n".join(lines))
    # ParDeepestFirst uses at least as much memory as ParInnerFirst on average.
    assert spread["ParDeepestFirst"][0] >= spread["ParInnerFirst"][0] - 0.25
