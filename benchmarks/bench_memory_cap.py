"""Extension E1: the memory-capped scheduler's trade-off curve.

The paper's conclusion asks for algorithms that "take as input a cap on
the memory usage". This benchmark sweeps the cap from M_seq to
(p+1) M_seq and records the resulting makespan, tracing the
memory/makespan Pareto front the bi-objective analysis of Section 4.2
says cannot be approximated simultaneously -- but can be *navigated*.
"""


from repro.core.simulator import simulate
from repro.parallel import memory_bounded_schedule, par_deepest_first
from repro.sequential import optimal_postorder
from .conftest import save_artifact

_FACTORS = (1.0, 1.25, 1.5, 2.0, 3.0, 5.0)


def test_memory_cap_tradeoff(benchmark, dataset, artifact_dir):
    p = 8
    sample = dataset[: min(8, len(dataset))]

    def measure():
        rows = []
        for inst in sample:
            mseq = optimal_postorder(inst.tree).peak_memory
            spans = []
            for factor in _FACTORS:
                sch = memory_bounded_schedule(inst.tree, p, factor * mseq)
                sim = simulate(sch)
                assert sim.peak_memory <= factor * mseq + 1e-6
                spans.append(sim.makespan)
            free = simulate(par_deepest_first(inst.tree, p)).makespan
            rows.append((inst.name, mseq, spans, free))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    header = f"{'tree':<28s} " + " ".join(f"x{f:<5g}" for f in _FACTORS) + "  uncapped"
    lines = [f"memory-capped makespan / uncapped ParDeepestFirst (p={p})", header]
    for name, mseq, spans, free in rows:
        # makespan non-increasing in the cap
        assert all(a >= b - 1e-6 for a, b in zip(spans, spans[1:]))
        cells = " ".join(f"{s / free:6.3f}" for s in spans)
        lines.append(f"{name:<28s} {cells}    1.000")
    save_artifact(artifact_dir, "memory_cap_tradeoff.txt", "\n".join(lines))
    # Loosening the cap never slows the strict-mode scheduler, and even
    # its tightest setting cannot exceed fully sequential processing.
    for name, _, spans, free in rows:
        assert spans[-1] <= spans[0] + 1e-6, name
        tree = next(i.tree for i in sample if i.name == name)
        assert spans[0] <= tree.total_work() + 1e-6, name
