"""Ablation benchmarks of the design choices called out in DESIGN.md.

* **A1 -- splitting selection**: Algorithm 2's cost-minimising step
  choice vs the naive "first splitting with <= p subtrees" strategy;
* **A2 -- sequential base order**: optimal postorder vs naive postorder
  vs Liu's exact traversal as the reference order (paper Section 6.1
  argues optimal postorder suffices);
* **A3 -- amalgamation granularity**: how the cap (1/2/4/16) moves the
  heuristics' memory/makespan trade-off;
* **A4 -- priority-detail ablations**: ParInnerFirst with a naive leaf
  order (paper: "It makes heuristic sense that this postorder is an
  optimal sequential postorder") and ParDeepestFirst with hop depths
  instead of w-weighted depths (paper Section 5.3's depth definition).
"""

import numpy as np

from repro.core.simulator import simulate
from repro.parallel import par_deepest_first, par_inner_first, par_subtrees
from repro.parallel.variants import par_hop_deepest_first, par_inner_first_naive_order
from repro.parallel.split_subtrees import split_subtrees
from repro.sequential import (
    liu_optimal_traversal,
    natural_postorder,
    optimal_postorder,
)
from .conftest import save_artifact


def test_a1_splitting_selection(benchmark, dataset, artifact_dir):
    """Lemma 1's argmin over all splitting steps vs stopping as soon as
    at most p subtrees exist: the argmin can only be better."""
    p = 4

    def measure():
        gains = []
        for inst in dataset:
            res = split_subtrees(inst.tree, p)
            work = inst.tree.subtree_work()
            # naive: the state right after the first pop (root split once)
            root = inst.tree.root
            kids = sorted(
                inst.tree.children(root), key=lambda c: float(work[c]), reverse=True
            )
            if kids:
                par = float(work[kids[0]])
                seq = float(inst.tree.w[root]) + sum(float(work[c]) for c in kids[p:])
                naive = par + seq
            else:
                naive = float(work[root])
            gains.append(naive / res.cost)
        return gains

    gains = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_artifact(
        artifact_dir,
        "ablation_a1_splitting.txt",
        f"naive-split / optimal-split makespan ratio over {len(gains)} trees: "
        f"mean {np.mean(gains):.3f}, max {np.max(gains):.3f}",
    )
    assert min(gains) >= 1.0 - 1e-9  # Lemma 1: the argmin is optimal


def test_a2_sequential_base_order(benchmark, dataset, artifact_dir):
    """Paper 6.1: the optimal postorder is a near-optimal, cheap stand-in
    for Liu's exact algorithm as the sequential reference."""

    def measure():
        rows = []
        for inst in dataset[:8]:
            po = optimal_postorder(inst.tree).peak_memory
            nat = natural_postorder(inst.tree).peak_memory
            liu = liu_optimal_traversal(inst.tree).peak_memory
            rows.append((inst.name, liu, po, nat))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'tree':<28s} {'liu':>12s} {'opt-po':>12s} {'naive-po':>12s}"]
    po_gaps = []
    for name, liu, po, nat in rows:
        assert liu <= po + 1e-9 <= nat + 1e-9
        po_gaps.append(po / liu)
        lines.append(f"{name:<28s} {liu:>12.4g} {po:>12.4g} {nat:>12.4g}")
    lines.append(
        f"optimal postorder within {100 * (np.max(po_gaps) - 1):.2f}% of exact "
        f"(paper: 1% average gap, optimal in 95.8% of cases)"
    )
    save_artifact(artifact_dir, "ablation_a2_base_order.txt", "\n".join(lines))
    assert np.max(po_gaps) <= 1.25


def test_a3_amalgamation_granularity(benchmark, dataset, artifact_dir):
    """Coarser assembly trees shift both objectives; the heuristic
    ranking (ParSubtrees for memory) is stable across caps."""
    p = 4
    by_cap: dict[int, list] = {}
    for inst in dataset:
        by_cap.setdefault(inst.amalgamation, []).append(inst)

    def measure():
        out = {}
        for cap, instances in sorted(by_cap.items()):
            mem_sub, mem_inner = [], []
            for inst in instances:
                mseq = optimal_postorder(inst.tree).peak_memory
                mem_sub.append(simulate(par_subtrees(inst.tree, p)).peak_memory / mseq)
                mem_inner.append(
                    simulate(par_inner_first(inst.tree, p)).peak_memory / mseq
                )
            out[cap] = (float(np.mean(mem_sub)), float(np.mean(mem_inner)))
        return out

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'cap':>4s} {'ParSubtrees mem ratio':>22s} {'ParInnerFirst mem ratio':>24s}"]
    for cap, (sub, inner) in sorted(result.items()):
        lines.append(f"{cap:>4d} {sub:>22.3f} {inner:>24.3f}")
    save_artifact(artifact_dir, "ablation_a3_amalgamation.txt", "\n".join(lines))
    # ranking stability: ParSubtrees <= ParInnerFirst memory at every cap
    for cap, (sub, inner) in result.items():
        assert sub <= inner + 0.5


def test_a4_priority_details(benchmark, dataset, artifact_dir):
    """The two priority details of Section 5.2/5.3, ablated."""
    p = 8
    sample = dataset[: min(16, len(dataset))]

    def measure():
        mem_ratio, mk_ratio = [], []
        for inst in sample:
            tree = inst.tree
            base_mem = simulate(par_inner_first(tree, p)).peak_memory
            naive_mem = simulate(par_inner_first_naive_order(tree, p)).peak_memory
            mem_ratio.append(naive_mem / base_mem)
            base_mk = simulate(par_deepest_first(tree, p)).makespan
            hop_mk = simulate(par_hop_deepest_first(tree, p)).makespan
            mk_ratio.append(hop_mk / base_mk)
        return (
            float(np.mean(mem_ratio)),
            float(np.max(mem_ratio)),
            float(np.mean(mk_ratio)),
            float(np.max(mk_ratio)),
        )

    mem_mean, mem_max, mk_mean, mk_max = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    save_artifact(
        artifact_dir,
        "ablation_a4_priorities.txt",
        (
            f"ParInnerFirst naive-O / optimal-O memory ratio: "
            f"mean {mem_mean:.3f}, max {mem_max:.3f}\n"
            f"ParDeepestFirst hop / w-weighted makespan ratio: "
            f"mean {mk_mean:.3f}, max {mk_max:.3f}"
        ),
    )
    # the ablated variants must not *win* systematically: the paper's
    # choices are at least as good on average (small tolerance for noise)
    assert mem_mean >= 0.9
    assert mk_mean >= 0.98
