"""Record-store benchmark: columnar segments vs. flat JSONL at scale.

Synthesizes a campaign-shaped record stream (a (trees x heuristics x p)
grid with ~1% quarantined ``FailedRecord`` rows) at 1e5..1e6 records
and times, per backend:

* **write** -- persisting the stream (``save_records`` line-by-line vs.
  one sealed npz segment per store);
* **load** -- materialising :class:`~repro.analysis.store.RecordColumns`
  (a million ``json.loads`` calls vs. ``np.load`` of the segments);
* **analyze** -- the end-to-end consumer path: load the store, then run
  the vectorised groupby (:func:`~repro.analysis.metrics.group_stats`)
  and Table 1 (:func:`~repro.analysis.metrics.compute_table1_stats`).
  ``legacy_analyze`` is the historical path (``load_records`` into
  dataclass objects + the per-record reference loop), timed at the
  smallest size as the trajectory baseline.

Loaded columns are asserted equal across backends before any timing is
reported, and the vectorised Table 1 is asserted equal to the reference
loop -- the speedup is never allowed to change a single statistic.

A separate ``--pareto`` mode times the per-point Pareto front /
hypervolume loops against their column fast paths (equality asserted).

``--smoke`` runs one tiny size of everything (CI bit-rot guard).
Appends to the shared perf trajectory by default::

    PYTHONPATH=src python benchmarks/bench_records.py --append
    PYTHONPATH=src python benchmarks/bench_records.py \
        --sizes 100000 1000000 --append
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_engine import write_payload  # noqa: E402

from repro.analysis.experiments import load_records, save_records  # noqa: E402
from repro.analysis.metrics import (  # noqa: E402
    compute_table1_stats,
    compute_table1_stats_reference,
    group_stats,
)
from repro.analysis.pareto import (  # noqa: E402
    ParetoPoint,
    hypervolume,
    hypervolume_columns,
    pareto_front,
    pareto_front_columns,
)
from repro.analysis.store import (  # noqa: E402
    ColumnarStore,
    RecordColumns,
    open_store,
)

_HEURISTICS = (
    "ParSubtrees",
    "ParSubtreesOptim",
    "ParInnerFirst",
    "ParDeepestFirst",
    "MemoryBounded@cap1.5",
    "MemoryBounded@cap2",
)
_PROCS = (2, 4, 8, 16, 32)


def synth_columns(n_records: int, seed: int, failed_rate: float = 0.01) -> RecordColumns:
    """A deterministic campaign-shaped stream of ~``n_records`` rows.

    Rounded to whole (tree x heuristic x p) grids, and quarantines hit
    whole (tree, p) scenarios, so Table 1 (which requires complete
    scenarios) runs on the measured remainder exactly like it does on a
    real supervised campaign with ``--retry-failed`` pending.
    """
    rng = np.random.default_rng(seed)
    per_tree = len(_HEURISTICS) * len(_PROCS)
    n_trees = max(1, (n_records + per_tree - 1) // per_tree)
    n_records = n_trees * per_tree
    tree_id = np.repeat(np.arange(n_trees), per_tree)
    slot = np.tile(np.arange(per_tree), n_trees)
    heur = np.asarray(_HEURISTICS)[slot // len(_PROCS)]
    p = np.asarray(_PROCS, np.int64)[slot % len(_PROCS)]
    n_nodes = 500 + 100 * (tree_id % 37)
    mk_lb = rng.uniform(10.0, 100.0, n_records)
    mem_lb = rng.uniform(10.0, 100.0, n_records)
    scen = tree_id * len(_PROCS) + slot % len(_PROCS)
    failed = (rng.random(n_trees * len(_PROCS)) < failed_rate)[scen]
    return RecordColumns(
        tree=np.char.add("tree-", tree_id.astype(str)),
        heuristic=heur.copy(),
        error=np.where(failed, "worker crash: exit code 39", ""),
        n=n_nodes.astype(np.int64),
        p=p,
        attempts=np.where(failed, 3, 0).astype(np.int64),
        makespan=np.where(failed, np.nan, mk_lb * rng.uniform(1.0, 3.0, n_records)),
        memory=np.where(failed, np.nan, mem_lb * rng.uniform(1.0, 5.0, n_records)),
        memory_lb=np.where(failed, np.nan, mem_lb),
        makespan_lb=np.where(failed, np.nan, mk_lb),
        failed=failed,
    )


def timeit(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _assert_columns_equal(a: RecordColumns, b: RecordColumns) -> None:
    for name, arr in a.arrays().items():
        got = getattr(b, name)
        if arr.dtype.kind == "f":
            assert np.array_equal(arr, got, equal_nan=True), f"column {name} diverged"
        else:
            assert np.array_equal(arr, got), f"column {name} diverged"


def _load_groupby(path: str):
    return group_stats(open_store(path).columns(include_failed=False))


def _load_table1(path: str):
    return compute_table1_stats(open_store(path).columns(include_failed=False))


def run_store_bench(
    sizes, repeats: int, seed: int, legacy_max: int = 200_000
) -> list[dict]:
    rows = []
    for n in sizes:
        cols = synth_columns(int(n), seed)
        n = len(cols)
        records = cols.to_records(include_failed=True)  # untimed setup
        work = tempfile.mkdtemp(prefix="bench-records-")
        try:
            jsonl = os.path.join(work, "records.jsonl")
            store_dir = os.path.join(work, "records.store")

            def write_jsonl():
                if os.path.exists(jsonl):
                    os.unlink(jsonl)
                save_records(records, jsonl, append=True)

            def write_columnar():
                store = ColumnarStore(store_dir)
                store.reset()
                store.extend_columns(cols)

            t_jw, _ = timeit(write_jsonl, repeats)
            t_cw, _ = timeit(write_columnar, repeats)

            t_jl, from_jsonl = timeit(
                lambda: open_store(jsonl).columns(include_failed=True), repeats
            )
            t_cl, from_col = timeit(
                lambda: open_store(store_dir).columns(include_failed=True), repeats
            )
            _assert_columns_equal(from_jsonl, from_col)

            t_jg, groups_j = timeit(lambda: _load_groupby(jsonl), repeats)
            t_cg, groups_c = timeit(lambda: _load_groupby(store_dir), repeats)
            assert groups_j == groups_c, "groupby diverged across backends"
            t_jt, table1_j = timeit(lambda: _load_table1(jsonl), repeats)
            t_ct, table1_c = timeit(lambda: _load_table1(store_dir), repeats)
            assert table1_j == table1_c, "Table 1 diverged across backends"
            row = {
                "records": n,
                "jsonl_write_s": round(t_jw, 4),
                "columnar_write_s": round(t_cw, 4),
                "jsonl_load_s": round(t_jl, 4),
                "columnar_load_s": round(t_cl, 4),
                "jsonl_groupby_s": round(t_jg, 4),
                "columnar_groupby_s": round(t_cg, 4),
                "jsonl_table1_s": round(t_jt, 4),
                "columnar_table1_s": round(t_ct, 4),
                "write_speedup": round(t_jw / t_cw, 2),
                "load_speedup": round(t_jl / t_cl, 2),
                "groupby_speedup": round(t_jg / t_cg, 2),
                "table1_speedup": round(t_jt / t_ct, 2),
            }
            if n <= legacy_max:
                # the historical object path, as the trajectory baseline
                def legacy():
                    objs = load_records(jsonl)
                    return compute_table1_stats_reference(objs)

                t_legacy, ref_stats = timeit(legacy, repeats)
                assert table1_c == ref_stats, "vectorised Table 1 diverged"
                row["legacy_table1_s"] = round(t_legacy, 4)
                row["legacy_table1_speedup"] = round(t_legacy / t_ct, 2)
            print(
                f"n={n:>8d}  write jsonl {t_jw:7.3f}s col {t_cw:7.3f}s "
                f"({row['write_speedup']:5.1f}x)  load {t_jl:7.3f}s vs "
                f"{t_cl:7.3f}s ({row['load_speedup']:5.1f}x)  "
                f"load+groupby {t_jg:7.3f}s vs {t_cg:7.3f}s "
                f"({row['groupby_speedup']:5.1f}x)  load+table1 "
                f"{t_jt:7.3f}s vs {t_ct:7.3f}s ({row['table1_speedup']:5.1f}x)"
            )
            rows.append(row)
        finally:
            shutil.rmtree(work, ignore_errors=True)
    return rows


def run_pareto_bench(sizes, repeats: int, seed: int) -> list[dict]:
    rows = []
    for n in sizes:
        n = int(n)
        rng = np.random.default_rng(seed)
        mk = rng.uniform(1.0, 10.0, n)
        mem = rng.uniform(1.0, 10.0, n)
        points = [ParetoPoint(a, b, "x") for a, b in zip(mk, mem)]
        ref = ParetoPoint(11.0, 11.0, "ref")

        t_pf, front = timeit(lambda: pareto_front(points), repeats)
        t_pfc, idx = timeit(lambda: pareto_front_columns(mk, mem), repeats)
        assert [ParetoPoint(mk[i], mem[i], "x") for i in idx] == front

        t_hv, hv = timeit(lambda: hypervolume(points, ref), repeats)
        t_hvc, hvc = timeit(lambda: hypervolume_columns(mk, mem, ref), repeats)
        assert abs(hv - hvc) <= 1e-9 * abs(hv)

        row = {
            "points": n,
            "front_s": round(t_pf, 4),
            "front_columns_s": round(t_pfc, 4),
            "front_speedup": round(t_pf / t_pfc, 2) if t_pfc > 0 else None,
            "hypervolume_s": round(t_hv, 4),
            "hypervolume_columns_s": round(t_hvc, 4),
        }
        print(
            f"n={n:>8d}  front {t_pf:7.3f}s vs {t_pfc:7.4f}s  "
            f"hypervolume {t_hv:7.3f}s vs {t_hvc:7.4f}s"
        )
        rows.append(row)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10**5, 10**6]
    )
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--pareto",
        action="store_true",
        help="also time the Pareto front / hypervolume column fast paths",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append to the output file instead of overwriting it",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance, all modes (CI bit-rot guard)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.sizes = [5000]
        args.repeats = 1
    payload = {
        "benchmark": "records",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": args.repeats,
        "seed": args.seed,
        "smoke": bool(args.smoke),
        "store": run_store_bench(args.sizes, args.repeats, args.seed),
    }
    if args.smoke or args.pareto:
        payload["pareto"] = run_pareto_bench(args.sizes, args.repeats, args.seed)
    write_payload(args.output, payload, args.append)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
