"""Figures 6, 7 and 8: scatter comparisons with distribution crosses.

* Figure 6 compares every heuristic to the two lower bounds;
* Figure 7 normalises per scenario by ParSubtrees;
* Figure 8 normalises per scenario by ParInnerFirst.

Each benchmark times the figure-data computation over the shared record
set and persists both the ASCII rendering and the raw CSV.
"""

import numpy as np

from repro.analysis import figure_csv, figure_data, render_figure
from .conftest import save_artifact


def test_figure6_lower_bounds(benchmark, records, artifact_dir):
    data = benchmark.pedantic(
        lambda: figure_data(records, 6), rounds=1, iterations=1
    )
    text = render_figure(data, title="Figure 6: comparison to lower bounds")
    save_artifact(artifact_dir, "figure6.txt", text)
    save_artifact(artifact_dir, "figure6.csv", figure_csv(data))
    by_name = {s.heuristic: s for s in data}
    # All ratios dominate 1 (these are lower bounds).
    for s in data:
        assert np.all(s.x >= 1 - 1e-9) and np.all(s.y >= 1 - 1e-9)
    # Paper: ParDeepestFirst has the best average makespan ratio and the
    # worst average memory ratio of the four heuristics.
    avg_mk = {n: float(np.mean(s.x)) for n, s in by_name.items()}
    avg_mem = {n: float(np.mean(s.y)) for n, s in by_name.items()}
    assert min(avg_mk, key=avg_mk.get) == "ParDeepestFirst"
    assert max(avg_mem, key=avg_mem.get) == "ParDeepestFirst"


def test_figure7_vs_parsubtrees(benchmark, records, artifact_dir):
    data = benchmark.pedantic(
        lambda: figure_data(records, 7), rounds=1, iterations=1
    )
    text = render_figure(data, title="Figure 7: comparison to ParSubtrees")
    save_artifact(artifact_dir, "figure7.txt", text)
    save_artifact(artifact_dir, "figure7.csv", figure_csv(data))
    by_name = {s.heuristic: s for s in data}
    # Paper: ParSubtreesOptim stays close to ParSubtrees -- better
    # makespan, slightly worse memory, on average.
    optim = by_name["ParSubtreesOptim"]
    assert float(np.mean(optim.x)) <= 1.0 + 1e-9
    assert float(np.mean(optim.y)) >= 1.0 - 1e-9
    # Paper: the list schedulers usually improve the makespan over
    # ParSubtrees at a memory cost.
    for name in ("ParInnerFirst", "ParDeepestFirst"):
        assert float(np.mean(by_name[name].x)) <= 1.0 + 1e-9


def test_figure8_vs_parinnerfirst(benchmark, records, artifact_dir):
    data = benchmark.pedantic(
        lambda: figure_data(records, 8), rounds=1, iterations=1
    )
    text = render_figure(data, title="Figure 8: comparison to ParInnerFirst")
    save_artifact(artifact_dir, "figure8.txt", text)
    save_artifact(artifact_dir, "figure8.csv", figure_csv(data))
    by_name = {s.heuristic: s for s in data}
    # Paper: ParDeepestFirst always uses more memory than ParInnerFirst
    # while having comparable makespans.
    deepest = by_name["ParDeepestFirst"]
    assert float(np.mean(deepest.y)) >= 1.0 - 1e-9
    assert 0.7 <= float(np.mean(deepest.x)) <= 1.1
