"""Scaling benchmark: seed closure-based scheduler vs. the vectorized engine.

Times ParDeepestFirst on random trees of n in {10^3, 10^4, 10^5} through
two paths:

* **legacy** -- the seed implementation (embedded verbatim below): a
  heapq event loop driven by a per-node Python priority closure that
  builds a ``(float, int, int)`` tuple with numpy scalar indexing on
  every ready insertion;
* **vectorized** -- the unified engine (:mod:`repro.core.engine`):
  priorities precomputed as numpy key columns collapsed into one integer
  rank per node, integer-only heap operations in the sweep.

The reference sequential postorder (shared preprocessing, identical in
both paths) is computed once outside the timed region and passed in, so
the measurement isolates the scheduling path the refactor changed. Both
paths must produce the identical schedule (asserted).

Writes ``BENCH_engine.json`` (repo root by default) so future PRs have a
perf trajectory::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py --sizes 1000 10000 --repeats 5
"""

from __future__ import annotations

import argparse
import heapq
import json
import platform
import time

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import NO_PARENT
from repro.parallel.list_scheduling import postorder_ranks
from repro.parallel.par_deepest_first import par_deepest_first
from repro.sequential.postorder import optimal_postorder
from repro.workloads.synthetic import random_weighted_tree


# ----------------------------------------------------------------------
# the seed closure-based path, embedded verbatim for a stable baseline
# (including the seed's tree sweeps: the per-call DFS postorder and the
# numpy-scalar-indexing depth accumulation that the refactor vectorized)
# ----------------------------------------------------------------------
def legacy_postorder(tree):
    n = tree.n
    order = np.empty(n, dtype=np.int64)
    idx = 0
    stack = [(tree.root, 0)]
    visited = np.zeros(n, dtype=bool)
    while stack:
        node, cursor = stack.pop()
        if visited[node]:
            raise ValueError("parent structure contains a cycle")
        kids = tree.children(node)
        if cursor < len(kids):
            stack.append((node, cursor + 1))
            stack.append((kids[cursor], 0))
        else:
            visited[node] = True
            order[idx] = node
            idx += 1
    return order[:idx]


def legacy_weighted_depths(tree):
    n = tree.n
    depth = np.zeros(n, dtype=np.float64)
    for node in reversed(legacy_postorder(tree)):
        p = tree.parent[node]
        depth[node] = tree.w[node] + (depth[p] if p != NO_PARENT else 0.0)
    return depth


def legacy_list_schedule(tree, p, priority):
    n = tree.n
    start = np.full(n, -1.0, dtype=np.float64)
    proc = np.full(n, -1, dtype=np.int64)
    pending_children = np.array([tree.degree(i) for i in range(n)], dtype=np.int64)

    ready = []
    for i in range(n):
        if pending_children[i] == 0:
            heapq.heappush(ready, (priority(i), i))

    free_procs = list(range(p - 1, -1, -1))
    events = []
    now = 0.0
    scheduled = 0
    while scheduled < n or events:
        while free_procs and ready:
            _, node = heapq.heappop(ready)
            q = free_procs.pop()
            start[node] = now
            proc[node] = q
            heapq.heappush(events, (now + float(tree.w[node]), node))
            scheduled += 1
        if not events:
            break
        now, node = heapq.heappop(events)
        finished = [node]
        while events and events[0][0] == now:
            finished.append(heapq.heappop(events)[1])
        for node in finished:
            free_procs.append(int(proc[node]))
            parent = int(tree.parent[node])
            if parent != NO_PARENT:
                pending_children[parent] -= 1
                if pending_children[parent] == 0:
                    heapq.heappush(ready, (priority(parent), parent))
    return Schedule(tree, start, proc, p)


def legacy_par_deepest_first(tree, p, order):
    ranks = postorder_ranks(tree, order)
    wdepth = legacy_weighted_depths(tree)

    def priority(i):
        return (-float(wdepth[i]), 1 if tree.is_leaf(i) else 0, int(ranks[i]))

    return legacy_list_schedule(tree, p, priority)


# ----------------------------------------------------------------------
def best_of(fn, repeats: int) -> tuple[float, Schedule]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_bench(sizes, p: int, repeats: int, seed: int) -> list[dict]:
    rows = []
    for n in sizes:
        tree = random_weighted_tree(int(n), np.random.default_rng(seed))
        order = optimal_postorder(tree).order  # shared preprocessing, untimed
        t_legacy, ref = best_of(lambda: legacy_par_deepest_first(tree, p, order), repeats)
        t_vec, got = best_of(lambda: par_deepest_first(tree, p, order=order), repeats)
        assert np.array_equal(got.start, ref.start), "paths diverged"
        assert np.array_equal(got.proc, ref.proc), "paths diverged"
        row = {
            "n": int(n),
            "p": p,
            "legacy_s": round(t_legacy, 6),
            "vectorized_s": round(t_vec, 6),
            "speedup": round(t_legacy / t_vec, 3),
        }
        print(
            f"n={row['n']:>7d} p={p}  legacy {row['legacy_s']:8.4f}s  "
            f"vectorized {row['vectorized_s']:8.4f}s  speedup {row['speedup']:5.2f}x"
        )
        rows.append(row)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10**3, 10**4, 10**5]
    )
    parser.add_argument("--processors", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--output", default="BENCH_engine.json")
    args = parser.parse_args(argv)
    rows = run_bench(args.sizes, args.processors, args.repeats, args.seed)
    payload = {
        "benchmark": "engine",
        "algorithm": "ParDeepestFirst",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": args.repeats,
        "seed": args.seed,
        "results": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
