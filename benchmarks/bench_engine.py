"""Scaling benchmark: event-sweep implementations against each other.

Three modes, timing schedulers on random trees:

* **default (legacy comparison)** -- the seed implementation (embedded
  verbatim below: a heapq event loop driven by a per-node Python
  priority closure) against the unified engine's pure-Python reference
  backend, isolating what the PR-1 vectorization changed;
* **``--compare-backends``** -- the engine's sweep backends against
  each other (``python`` vs. every available compiled backend:
  ``numba`` and/or ``c``), with the priority rank precomputed outside
  the timed region so the measurement isolates the *event sweep*
  itself. All backends must produce the identical schedule (asserted);
* **``--grid``** -- an (8-algorithm x 4-p) campaign grid over one tree,
  unprepared (every scenario re-derives the tree state, the historical
  behaviour) vs. prepared (one
  :class:`~repro.core.prepared.PreparedTree` shared by all scenarios).
  Both paths must produce identical schedules (asserted); the ratio is
  the amortization win of the prepared-tree refactor.
* **``--megabatch``** -- the same grid, per-scenario prepared calls vs.
  one :func:`~repro.core.engine.sweep_batch` megabatch kernel call
  (OpenMP/prange-threaded across scenarios in the compiled backends;
  ``--threads`` controls the worker count, default
  :func:`~repro.core.engine.default_threads`). Schedules must match the
  per-scenario path bit for bit (asserted); the ratio is the win of
  dropping per-scenario Python/ctypes dispatch and sweeping the grid
  GIL-free in one call.

``--smoke`` runs all modes at a small size (CI guard against bit-rot);
``--append`` appends the payload to an existing trajectory file instead
of overwriting it (the file then holds a JSON array of entries).

Writes ``BENCH_engine.json`` (repo root by default) so future PRs have a
perf trajectory::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py --compare-backends \
        --sizes 100000 1000000 --append
    PYTHONPATH=src python benchmarks/bench_engine.py --grid \
        --sizes 100000 --append
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import platform
import time

import numpy as np

from repro import registry
from repro.core.engine import (
    SchedulerEngine,
    available_backends,
    default_threads,
    sweep_batch,
)
from repro.core.prepared import PreparedTree
from repro.core.schedule import Schedule
from repro.core.tree import NO_PARENT
from repro.parallel.list_scheduling import postorder_ranks
from repro.parallel.par_deepest_first import par_deepest_first, par_deepest_first_rank
from repro.sequential.postorder import optimal_postorder
from repro.workloads.synthetic import random_weighted_tree


# ----------------------------------------------------------------------
# the seed closure-based path, embedded verbatim for a stable baseline
# (including the seed's tree sweeps: the per-call DFS postorder and the
# numpy-scalar-indexing depth accumulation that the refactor vectorized)
# ----------------------------------------------------------------------
def legacy_postorder(tree):
    n = tree.n
    order = np.empty(n, dtype=np.int64)
    idx = 0
    stack = [(tree.root, 0)]
    visited = np.zeros(n, dtype=bool)
    while stack:
        node, cursor = stack.pop()
        if visited[node]:
            raise ValueError("parent structure contains a cycle")
        kids = tree.children(node)
        if cursor < len(kids):
            stack.append((node, cursor + 1))
            stack.append((kids[cursor], 0))
        else:
            visited[node] = True
            order[idx] = node
            idx += 1
    return order[:idx]


def legacy_weighted_depths(tree):
    n = tree.n
    depth = np.zeros(n, dtype=np.float64)
    for node in reversed(legacy_postorder(tree)):
        p = tree.parent[node]
        depth[node] = tree.w[node] + (depth[p] if p != NO_PARENT else 0.0)
    return depth


def legacy_list_schedule(tree, p, priority):
    n = tree.n
    start = np.full(n, -1.0, dtype=np.float64)
    proc = np.full(n, -1, dtype=np.int64)
    pending_children = np.array([tree.degree(i) for i in range(n)], dtype=np.int64)

    ready = []
    for i in range(n):
        if pending_children[i] == 0:
            heapq.heappush(ready, (priority(i), i))

    free_procs = list(range(p - 1, -1, -1))
    events = []
    now = 0.0
    scheduled = 0
    while scheduled < n or events:
        while free_procs and ready:
            _, node = heapq.heappop(ready)
            q = free_procs.pop()
            start[node] = now
            proc[node] = q
            heapq.heappush(events, (now + float(tree.w[node]), node))
            scheduled += 1
        if not events:
            break
        now, node = heapq.heappop(events)
        finished = [node]
        while events and events[0][0] == now:
            finished.append(heapq.heappop(events)[1])
        for node in finished:
            free_procs.append(int(proc[node]))
            parent = int(tree.parent[node])
            if parent != NO_PARENT:
                pending_children[parent] -= 1
                if pending_children[parent] == 0:
                    heapq.heappush(ready, (priority(parent), parent))
    return Schedule(tree, start, proc, p)


def legacy_par_deepest_first(tree, p, order):
    ranks = postorder_ranks(tree, order)
    wdepth = legacy_weighted_depths(tree)

    def priority(i):
        return (-float(wdepth[i]), 1 if tree.is_leaf(i) else 0, int(ranks[i]))

    return legacy_list_schedule(tree, p, priority)


# ----------------------------------------------------------------------
# backend comparison: the event sweep itself, per engine backend
# ----------------------------------------------------------------------
def default_backends() -> list[str]:
    """``python`` plus every available *compiled* backend (the
    interpreted ``kernel`` backend is a testing aid, not a contender)."""
    avail = available_backends()
    return ["python"] + [b for b in ("numba", "c") if b in avail]


def run_backend_bench(
    sizes, p: int, repeats: int, seed: int, backends: list[str] | None = None
) -> list[dict]:
    """Time ``SchedulerEngine.run`` per backend on identical instances.

    The priority rank and the engine are built outside the timed region,
    so the numbers isolate the sweep (plus each backend's per-run array
    preparation). One untimed warm-up run per backend produces the
    reference schedule and absorbs one-time costs (numba JIT
    compilation, the C kernel build); every backend's schedule must
    match the pure-Python reference bit for bit.
    """
    backends = default_backends() if backends is None else backends
    rows = []
    for n in sizes:
        tree = random_weighted_tree(int(n), np.random.default_rng(seed))
        order = optimal_postorder(tree).order  # shared preprocessing, untimed
        rank = par_deepest_first_rank(tree, order)
        seconds: dict[str, float] = {}
        ref = None
        for backend in backends:
            engine = SchedulerEngine(tree, p, rank, backend=backend)
            got = engine.run()  # warm-up (JIT/compile) + reference schedule
            assert engine.backend_used == backend, (
                f"{backend} fell back to {engine.backend_used}"
            )
            if ref is None:
                ref = got
            else:
                assert np.array_equal(got.start, ref.start), "backends diverged"
                assert np.array_equal(got.proc, ref.proc), "backends diverged"
            t, _ = best_of(engine.run, repeats)
            seconds[backend] = round(t, 6)
        row = {
            "n": int(n),
            "p": p,
            "seconds": seconds,
            "speedup_vs_python": {
                b: round(seconds["python"] / seconds[b], 3)
                for b in backends
                if b != "python" and seconds[b] > 0
            },
        }
        parts = "  ".join(f"{b} {seconds[b]:8.4f}s" for b in backends)
        gains = "  ".join(
            f"{b} {v:5.2f}x" for b, v in row["speedup_vs_python"].items()
        )
        print(f"n={row['n']:>8d} p={p}  {parts}  speedup: {gains}")
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# campaign-grid comparison: unprepared vs. PreparedTree-amortized sweeps
# ----------------------------------------------------------------------

#: the (8-algorithm) axis of the grid: every engine-based list scheduler
#: plus a strict memory-cap sweep (strict mode is feasible at any factor
#: >= 1, so the grid never raises)
GRID_ALGOS: list[tuple[str, dict]] = [
    ("ParInnerFirst", {}),
    ("ParDeepestFirst", {}),
    ("ParInnerFirst/naiveO", {}),
    ("ParDeepestFirst/hops", {}),
    ("MemoryBounded", {"cap_factor": 1.25}),
    ("MemoryBounded", {"cap_factor": 1.5}),
    ("MemoryBounded", {"cap_factor": 2.0}),
    ("MemoryBounded", {"cap_factor": 3.0}),
]

#: the (4-p) axis of the grid
GRID_PROCS = (2, 4, 8, 16)


def run_grid_bench(sizes, repeats: int, seed: int, backend: str | None = None) -> list[dict]:
    """Time a full (algorithm x p) grid, unprepared vs. prepared.

    The unprepared path calls ``registry.run(name, tree, p)`` per
    scenario -- every call re-derives the optimal postorder, the rank
    permutation and the engine's typed columns, exactly what the
    historical ``run_experiments`` did. The prepared path builds one
    :class:`PreparedTree` (timed, inside the loop) and runs the same
    scenarios against it. Schedules must match bit for bit.
    """
    rows = []
    for n in sizes:
        tree = random_weighted_tree(int(n), np.random.default_rng(seed))

        def run_grid(target):
            return [
                registry.run(name, target, p, backend=backend, **params)
                for p in GRID_PROCS
                for name, params in GRID_ALGOS
            ]

        ref = run_grid(tree)  # warm-up (JIT/compile) + reference schedules
        t_unprep, _ = best_of(lambda: run_grid(tree), repeats)
        t_prep, got = best_of(lambda: run_grid(PreparedTree(tree)), repeats)
        for a, b in zip(ref, got):
            assert np.array_equal(a.start, b.start), "prepared path diverged"
            assert np.array_equal(a.proc, b.proc), "prepared path diverged"
        row = {
            "n": int(n),
            "grid": f"{len(GRID_ALGOS)} algorithms x {len(GRID_PROCS)} p",
            "scenarios": len(GRID_ALGOS) * len(GRID_PROCS),
            "unprepared_s": round(t_unprep, 6),
            "prepared_s": round(t_prep, 6),
            "speedup": round(t_unprep / t_prep, 3),
        }
        print(
            f"n={row['n']:>8d} grid {row['grid']}  unprepared {t_unprep:8.4f}s  "
            f"prepared {t_prep:8.4f}s  speedup {row['speedup']:5.2f}x"
        )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# megabatch comparison: per-scenario prepared calls vs. one kernel call
# ----------------------------------------------------------------------
def run_megabatch_bench(
    sizes, repeats: int, seed: int, threads: int | None = None,
    backend: str | None = None,
) -> list[dict]:
    """Time the (algorithm x p) grid per-scenario vs. one megabatch.

    Both paths share one pre-built :class:`PreparedTree` (its
    construction is the grid-bench story, not this one): the
    per-scenario path calls ``registry.run`` once per grid cell, the
    megabatch path stacks every cell's :class:`BatchScenario` and makes
    a single :func:`sweep_batch` call -- one kernel invocation for the
    whole grid, thread-parallel across scenarios in the compiled
    backends. Schedules must match bit for bit (asserted).
    """
    nthreads = default_threads() if threads is None else max(1, int(threads))
    rows = []
    for n in sizes:
        tree = random_weighted_tree(int(n), np.random.default_rng(seed))
        prepared = PreparedTree(tree)
        specs = [
            registry.get(name).batch_spec(prepared, p, **params)
            for p in GRID_PROCS
            for name, params in GRID_ALGOS
        ]

        def run_single():
            return [
                registry.run(name, prepared, p, backend=backend, **params)
                for p in GRID_PROCS
                for name, params in GRID_ALGOS
            ]

        def run_batch():
            return sweep_batch(
                prepared, specs, backend=backend, threads=nthreads
            ).schedules()

        ref = run_single()  # warm-up (JIT/compile) + reference schedules
        run_batch()  # warm-up the batch entry point too
        t_single, _ = best_of(run_single, repeats)
        t_batch, got = best_of(run_batch, repeats)
        for a, b in zip(ref, got):
            assert np.array_equal(a.start, b.start), "megabatch diverged"
            assert np.array_equal(a.proc, b.proc), "megabatch diverged"
        row = {
            "n": int(n),
            "grid": f"{len(GRID_ALGOS)} algorithms x {len(GRID_PROCS)} p",
            "scenarios": len(GRID_ALGOS) * len(GRID_PROCS),
            "threads": nthreads,
            "per_scenario_s": round(t_single, 6),
            "megabatch_s": round(t_batch, 6),
            "speedup": round(t_single / t_batch, 3),
        }
        print(
            f"n={row['n']:>8d} grid {row['grid']} threads={nthreads}  "
            f"per-scenario {t_single:8.4f}s  megabatch {t_batch:8.4f}s  "
            f"speedup {row['speedup']:5.2f}x"
        )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
def best_of(fn, repeats: int) -> tuple[float, Schedule]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_bench(sizes, p: int, repeats: int, seed: int) -> list[dict]:
    rows = []
    for n in sizes:
        tree = random_weighted_tree(int(n), np.random.default_rng(seed))
        order = optimal_postorder(tree).order  # shared preprocessing, untimed
        t_legacy, ref = best_of(lambda: legacy_par_deepest_first(tree, p, order), repeats)
        t_vec, got = best_of(lambda: par_deepest_first(tree, p, order=order), repeats)
        assert np.array_equal(got.start, ref.start), "paths diverged"
        assert np.array_equal(got.proc, ref.proc), "paths diverged"
        row = {
            "n": int(n),
            "p": p,
            "legacy_s": round(t_legacy, 6),
            "vectorized_s": round(t_vec, 6),
            "speedup": round(t_legacy / t_vec, 3),
        }
        print(
            f"n={row['n']:>7d} p={p}  legacy {row['legacy_s']:8.4f}s  "
            f"vectorized {row['vectorized_s']:8.4f}s  speedup {row['speedup']:5.2f}x"
        )
        rows.append(row)
    return rows


def write_payload(path: str, payload: dict, append: bool) -> None:
    """Write (or append to) the benchmark trajectory file.

    With ``append=True`` an existing file becomes a JSON array of
    entries (a pre-existing single-object file is wrapped first), so
    every perf PR keeps adding comparable numbers to the same file.
    """
    if append and os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
        entries = existing if isinstance(existing, list) else [existing]
        entries.append(payload)
    else:
        entries = payload
    with open(path, "w") as fh:
        json.dump(entries, fh, indent=1)
        fh.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10**3, 10**4, 10**5]
    )
    parser.add_argument("--processors", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--compare-backends",
        action="store_true",
        help="compare the engine's sweep backends (python vs. available "
        "compiled ones) instead of the legacy-vs-vectorized comparison",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help="backends for --compare-backends (default: python + "
        "available compiled backends)",
    )
    parser.add_argument(
        "--grid",
        action="store_true",
        help="compare an (algorithm x p) campaign grid unprepared vs. "
        "amortized through one PreparedTree",
    )
    parser.add_argument(
        "--megabatch",
        action="store_true",
        help="compare the campaign grid per-scenario vs. one batched "
        "sweep_batch kernel call",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="megabatch worker threads (default: REPRO_NUM_THREADS or "
        "the usable core count)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append to the output file instead of overwriting it",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance, one repeat, all modes (CI bit-rot guard)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.sizes = [2000]
        args.repeats = 1
    grid_mode = (args.grid or args.megabatch) and not args.compare_backends
    payload = {
        "benchmark": "engine",
        "algorithm": "grid" if grid_mode else "ParDeepestFirst",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": args.repeats,
        "seed": args.seed,
        "smoke": bool(args.smoke),
    }
    if args.smoke or not (args.compare_backends or args.grid or args.megabatch):
        payload["results"] = run_bench(
            args.sizes, args.processors, args.repeats, args.seed
        )
    if args.smoke or args.compare_backends:
        payload["backends"] = run_backend_bench(
            args.sizes, args.processors, args.repeats, args.seed, args.backends
        )
    if args.smoke or args.grid:
        payload["grid"] = run_grid_bench(args.sizes, args.repeats, args.seed)
    if args.smoke or args.megabatch:
        payload["megabatch"] = run_megabatch_bench(
            args.sizes, args.repeats, args.seed, args.threads
        )
    write_payload(args.output, payload, args.append)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
