"""Scaling benchmark: seed tree core + sequential traversals vs. the
CSR / vectorized rewrite.

Three kernels are timed against the seed implementations (embedded
verbatim below for a stable baseline, with children lists rebuilt the
way the seed ``TaskTree.__post_init__`` did):

* **construction** -- validation, children lists and the cached
  postorder of ``TaskTree`` (seed: two Python loops over all nodes;
  now: one stable argsort + pointer doubling + level-synchronous
  subtree-size sweep);
* **optimal_postorder** -- Liu's 1986 memory-optimal postorder (seed:
  per-node ``sorted()`` plus a DFS emission; now: one segmented argsort
  per level, padded row-wise cumsums, closed-form position emission);
* **liu** -- Liu's 1987 exact traversal (seed: per-node Python profile
  recomputation; now: interleaved-cumsum profiles, array segment
  merges, incremental single-child re-segmentation).

Every timed pair is asserted bit-identical (orders and peaks). Writes
``BENCH_sequential.json`` (repo root by default), same row format as
``BENCH_engine.json``, so future PRs have a perf trajectory::

    PYTHONPATH=src python benchmarks/bench_sequential.py
    PYTHONPATH=src python benchmarks/bench_sequential.py --smoke
    PYTHONPATH=src python benchmarks/bench_sequential.py --sizes 1000 10000
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.core.tree import NO_PARENT, TaskTree
from repro.sequential.liu import liu_optimal_traversal
from repro.sequential.postorder import optimal_postorder
from repro.workloads.synthetic import random_weighted_tree


# ----------------------------------------------------------------------
# the seed implementations, embedded verbatim for a stable baseline
# ----------------------------------------------------------------------
def legacy_construction(parent, w, f, sizes):
    """The seed ``TaskTree.__post_init__``: validation + Python-loop
    children lists + iterative DFS postorder."""
    parent = np.ascontiguousarray(np.asarray(parent, dtype=np.int64))
    w = np.ascontiguousarray(np.asarray(w, dtype=np.float64))
    f = np.ascontiguousarray(np.asarray(f, dtype=np.float64))
    sizes = np.ascontiguousarray(np.asarray(sizes, dtype=np.float64))
    n = parent.shape[0]
    if not (w.shape[0] == f.shape[0] == sizes.shape[0] == n):
        raise ValueError("parent, w, f, sizes must have the same length")
    roots = np.flatnonzero(parent == NO_PARENT)
    if roots.shape[0] != 1:
        raise ValueError("expected exactly one root")
    if np.any((parent < NO_PARENT) | (parent >= n)):
        raise ValueError("parent indices out of range")
    if np.any(parent == np.arange(n)):
        raise ValueError("a node cannot be its own parent")
    if np.any(w < 0) or np.any(f < 0) or np.any(sizes < 0):
        raise ValueError("weights must be non-negative")
    children: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        p = parent[i]
        if p != NO_PARENT:
            children[p].append(i)
    kids = tuple(tuple(c) for c in children)
    root = int(np.flatnonzero(parent == NO_PARENT)[0])
    out: list[int] = []
    stack: list[int] = [root]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(kids[node])
    if len(out) != n:
        raise ValueError("parent structure contains a cycle")
    out.reverse()
    return kids, tuple(out)


def legacy_input_size(tree, kids, i):
    return float(sum(tree.f[j] for j in kids[i]))


def legacy_postorder_peaks(tree, kids, porder):
    n = tree.n
    peaks = np.zeros(n, dtype=np.float64)
    for i in porder:
        i = int(i)
        children = kids[i]
        if not children:
            peaks[i] = tree.sizes[i] + tree.f[i]
            continue
        ordered = sorted(children, key=lambda j: peaks[j] - tree.f[j], reverse=True)
        acc = 0.0
        best = 0.0
        for j in ordered:
            best = max(best, acc + peaks[j])
            acc += tree.f[j]
        best = max(best, acc + tree.sizes[i] + tree.f[i])
        peaks[i] = best
    return peaks


def legacy_optimal_postorder(tree, kids, porder):
    peaks = legacy_postorder_peaks(tree, kids, porder)
    n = tree.n
    order = np.empty(n, dtype=np.int64)
    idx = 0
    root = int(np.flatnonzero(tree.parent == NO_PARENT)[0])
    sorted_children: dict[int, list[int]] = {}
    stack: list[tuple[int, int]] = [(root, 0)]
    while stack:
        node, cursor = stack.pop()
        if node not in sorted_children:
            sorted_children[node] = sorted(
                kids[node], key=lambda j: peaks[j] - tree.f[j], reverse=True
            )
        children = sorted_children[node]
        if cursor < len(children):
            stack.append((node, cursor + 1))
            stack.append((children[cursor], 0))
        else:
            del sorted_children[node]
            order[idx] = node
            idx += 1
    return order, float(peaks[root])


def legacy_liu(tree, kids, porder):
    import heapq

    class Seg:
        __slots__ = ("hill", "valley", "nodes")

        def __init__(self, hill, valley, nodes):
            self.hill, self.valley, self.nodes = hill, valley, nodes

        @property
        def drop(self):
            return self.hill - self.valley

    def profile(order):
        m = len(order)
        during = np.empty(m, dtype=np.float64)
        after = np.empty(m, dtype=np.float64)
        mem = 0.0
        for k, node in enumerate(order):
            node = int(node)
            inputs = legacy_input_size(tree, kids, node)
            during[k] = mem + tree.sizes[node] + tree.f[node]
            mem = mem + tree.f[node] - inputs
            after[k] = mem
        return during, after

    def hill_valley(order):
        during, after = profile(order)
        segments = []
        start = 0
        m = len(order)
        while start < m:
            rel_h = int(np.argmax(during[start:])) + start
            rel_v = int(np.argmin(after[rel_h:])) + rel_h
            segments.append(
                Seg(float(during[rel_h]), float(after[rel_v]), tuple(order[start : rel_v + 1]))
            )
            start = rel_v + 1
        return segments

    def merge(child_segments):
        heap = []
        for c, segs in enumerate(child_segments):
            if segs:
                heapq.heappush(heap, (-segs[0].drop, c, 0))
        merged: list[int] = []
        while heap:
            _, c, k = heapq.heappop(heap)
            merged.extend(child_segments[c][k].nodes)
            if k + 1 < len(child_segments[c]):
                heapq.heappush(heap, (-child_segments[c][k + 1].drop, c, k + 1))
        return merged

    orders: dict[int, list[int]] = {}
    segments: dict[int, list] = {}
    for i in porder:
        i = int(i)
        children = kids[i]
        if not children:
            order = [i]
        else:
            order = merge([segments[c] for c in children])
            order.append(i)
            for c in children:
                del orders[c], segments[c]
        orders[i] = order
        segments[i] = hill_valley(order)
    root = int(np.flatnonzero(tree.parent == NO_PARENT)[0])
    peak = max(s.hill for s in segments[root])
    return np.asarray(orders[root], dtype=np.int64), float(peak)


# ----------------------------------------------------------------------
def best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_kernel(kernel, n, legacy_fn, vectorized_fn, check_fn, repeats):
    t_legacy, ref = best_of(legacy_fn, repeats)
    t_vec, got = best_of(vectorized_fn, repeats)
    check_fn(ref, got)
    row = {
        "kernel": kernel,
        "n": int(n),
        "legacy_s": round(t_legacy, 6),
        "vectorized_s": round(t_vec, 6),
        "speedup": round(t_legacy / t_vec, 3) if t_vec > 0 else float("inf"),
    }
    print(
        f"{kernel:>18s} n={row['n']:>7d}  legacy {row['legacy_s']:9.4f}s  "
        f"vectorized {row['vectorized_s']:9.4f}s  speedup {row['speedup']:6.2f}x"
    )
    return row


def run_bench(sizes, liu_sizes, repeats, seed):
    rows = []
    for n in sizes:
        rng = np.random.default_rng(seed)
        tree = random_weighted_tree(int(n), rng)
        parent = tree.parent.copy()
        w, f, sz = tree.w.copy(), tree.f.copy(), tree.sizes.copy()
        kids, porder_t = legacy_construction(parent, w, f, sz)
        porder = np.asarray(porder_t, dtype=np.int64)

        rows.append(
            bench_kernel(
                "construction",
                n,
                lambda: legacy_construction(parent, w, f, sz)[1],
                lambda: TaskTree(parent, w, f, sz).postorder(),
                lambda ref, got: _check(
                    np.array_equal(np.asarray(ref, dtype=np.int64), got), "postorder"
                ),
                repeats,
            )
        )
        rows.append(
            bench_kernel(
                "optimal_postorder",
                n,
                lambda: legacy_optimal_postorder(tree, kids, porder),
                lambda: optimal_postorder(tree),
                lambda ref, got: _check(
                    np.array_equal(ref[0], got.order) and ref[1] == got.peak_memory,
                    "optimal_postorder",
                ),
                repeats,
            )
        )
        if n in set(liu_sizes):
            rows.append(
                bench_kernel(
                    "liu",
                    n,
                    lambda: legacy_liu(tree, kids, porder),
                    lambda: liu_optimal_traversal(tree),
                    lambda ref, got: _check(
                        np.array_equal(ref[0], got.order) and ref[1] == got.peak_memory,
                        "liu",
                    ),
                    max(1, repeats - 1),
                )
            )
    # the historical worst case: a chain, where the seed recomputed the
    # full profile at every node (quadratic) and the incremental
    # re-segmentation is amortised linear
    n_chain = min(2000, max(sizes))
    rng = np.random.default_rng(seed)
    chain = TaskTree.from_parents(
        [NO_PARENT] + list(range(n_chain - 1)),
        w=rng.integers(1, 10, n_chain).astype(np.float64),
        f=rng.integers(1, 10, n_chain).astype(np.float64),
        sizes=rng.integers(0, 5, n_chain).astype(np.float64),
    )
    c_kids, c_porder_t = legacy_construction(chain.parent, chain.w, chain.f, chain.sizes)
    c_porder = np.asarray(c_porder_t, dtype=np.int64)
    rows.append(
        bench_kernel(
            "liu_chain",
            n_chain,
            lambda: legacy_liu(chain, c_kids, c_porder),
            lambda: liu_optimal_traversal(chain),
            lambda ref, got: _check(
                np.array_equal(ref[0], got.order) and ref[1] == got.peak_memory,
                "liu_chain",
            ),
            1,
        )
    )
    return rows


def _check(ok, what):
    if not ok:
        raise AssertionError(f"{what}: legacy and vectorized paths diverged")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[10**3, 10**4, 10**5])
    parser.add_argument(
        "--liu-sizes",
        type=int,
        nargs="+",
        default=None,
        help="sizes on which to also time Liu's exact traversal "
        "(default: every size up to 10^4; the legacy baseline is "
        "quadratic-ish and dominates the benchmark wall clock above that)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--output", default="BENCH_sequential.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes and one repeat: exercises every timed pair end "
        "to end (CI guard against bit-rot), not a measurement",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.sizes = [300, 1500]
        args.repeats = 1
    liu_sizes = (
        args.liu_sizes
        if args.liu_sizes is not None
        else [n for n in args.sizes if n <= 10**4]
    )
    rows = run_bench(args.sizes, liu_sizes, args.repeats, args.seed)
    payload = {
        "benchmark": "sequential",
        "kernels": ["construction", "optimal_postorder", "liu", "liu_chain"],
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": args.repeats,
        "seed": args.seed,
        "smoke": bool(args.smoke),
        "results": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
