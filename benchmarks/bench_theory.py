"""Theory benchmarks: Figures 1-5 and Theorems 1-2 measured end to end.

Each benchmark instantiates the paper's construction, runs the real
heuristics/simulator on it, and asserts the closed-form quantity from
the paper. The timing measures the cost of the construction + schedule
+ simulation.
"""

import numpy as np

from repro.core.simulator import simulate
from repro.parallel import par_deepest_first, par_inner_first, par_subtrees
from repro.pebble import (
    build_gadget,
    decide_gadget,
    deepest_first_memory_tree,
    fork_tree,
    inapprox_ratio_lower_bound,
    inapproximability_tree,
    inner_first_memory_tree,
    random_yes_instance,
)
from repro.sequential import liu_optimal_traversal, optimal_postorder
from .conftest import save_artifact


def test_np_gadget_figure1(benchmark, artifact_dir):
    """Theorem 1: the 3-Partition gadget schedule meets both bounds."""
    rng = np.random.default_rng(42)
    inst = random_yes_instance(3, 12, rng)
    gadget = build_gadget(inst)

    def solve():
        return decide_gadget(gadget)

    schedule = benchmark.pedantic(solve, rounds=1, iterations=1)
    sim = simulate(schedule)
    lines = [
        f"3-Partition m={inst.m} B={inst.target} values={inst.values}",
        f"gadget: n={gadget.tree.n} p={gadget.p}",
        f"makespan {sim.makespan:g} (bound {gadget.makespan_bound:g})",
        f"peak memory {sim.peak_memory:g} (bound {gadget.memory_bound:g})",
    ]
    save_artifact(artifact_dir, "theory_figure1.txt", "\n".join(lines))
    assert sim.makespan <= gadget.makespan_bound
    assert sim.peak_memory <= gadget.memory_bound


def test_inapproximability_figure2(benchmark, artifact_dir):
    """Theorem 2: optimal memory n+delta, CP delta+2, diverging bound."""
    rows = []

    def measure():
        out = []
        for n in (2, 3, 4):
            delta = n * n
            f2 = inapproximability_tree(n, delta)
            liu = liu_optimal_traversal(f2.tree)
            out.append((n, delta, liu.peak_memory, f2.tree.critical_path()))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    for n, delta, mem, cp in results:
        assert mem == n + delta
        assert cp == delta + 2
        rows.append(
            f"n={n} delta={delta}: M_opt={mem:g} CP={cp:g} "
            f"ratio_LB(alpha=2)={inapprox_ratio_lower_bound(n, delta, 2.0):.2f}"
        )
    lbs = [inapprox_ratio_lower_bound(n, n * n, 2.0) for n in (4, 8, 16, 32)]
    assert all(b > a for a, b in zip(lbs, lbs[1:]))  # divergence
    save_artifact(artifact_dir, "theory_figure2.txt", "\n".join(rows))


def test_fork_figure3(benchmark, artifact_dir):
    """ParSubtrees is a p-approximation, tight on forks."""
    p = 4

    def measure():
        out = []
        for k in (4, 16, 64):
            t = fork_tree(p, k)
            sim = simulate(par_subtrees(t, p))
            out.append((k, sim.makespan, k + 1))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    ratios = []
    for k, makespan, optimal in results:
        assert makespan == p * (k - 1) + 2
        ratios.append(makespan / optimal)
        rows.append(
            f"p={p} k={k}: ParSubtrees={makespan:g} optimal={optimal} "
            f"ratio={makespan / optimal:.3f}"
        )
    assert ratios == sorted(ratios) and ratios[-1] > 0.9 * p
    save_artifact(artifact_dir, "theory_figure3.txt", "\n".join(rows))


def test_inner_first_memory_figure4(benchmark, artifact_dir):
    """ParInnerFirst memory is unbounded vs M_seq = p+1."""
    p = 4

    def measure():
        out = []
        for k in (4, 8, 16):
            t = inner_first_memory_tree(p, k)
            seq = optimal_postorder(t).peak_memory
            sim = simulate(par_inner_first(t, p))
            out.append((k, seq, sim.peak_memory))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    ratios = []
    for k, seq, mem in results:
        assert seq == p + 1
        assert mem >= (k - 1) * (p - 1) + 1
        ratios.append(mem / seq)
        rows.append(f"p={p} k={k}: M_seq={seq:g} ParInnerFirst={mem:g}")
    assert ratios == sorted(ratios)  # grows without bound in k
    save_artifact(artifact_dir, "theory_figure4.txt", "\n".join(rows))


def test_deepest_first_memory_figure5(benchmark, artifact_dir):
    """ParDeepestFirst memory ~ #chains while M_seq = 3."""

    def measure():
        out = []
        for chains in (4, 8, 16, 32):
            t = deepest_first_memory_tree(chains, 6)
            seq = optimal_postorder(t).peak_memory
            sim = simulate(par_deepest_first(t, chains))
            out.append((chains, seq, sim.peak_memory))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for chains, seq, mem in results:
        assert seq == 3.0
        assert mem >= chains
        rows.append(f"chains={chains}: M_seq={seq:g} ParDeepestFirst={mem:g}")
    save_artifact(artifact_dir, "theory_figure5.txt", "\n".join(rows))
