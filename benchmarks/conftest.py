"""Shared fixtures of the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or an
ablation of a design choice) and writes its artifact under
``benchmarks/results/``, so the numbers are inspectable after a
``pytest benchmarks/ --benchmark-only`` run, whose own timing output
measures the cost of the full experiment.

The data-set scale is controlled by ``REPRO_BENCH_SCALE``
(``tiny`` | ``small`` | ``medium``, default ``small`` -- the scale the
EXPERIMENTS.md numbers were produced with; use ``tiny`` for quick runs).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def bench_processors() -> tuple[int, ...]:
    """Processor sweep: the paper's five values, trimmed at tiny scale."""
    if bench_scale() == "tiny":
        return (2, 4, 8)
    return (2, 4, 8, 16, 32)


@pytest.fixture(scope="session")
def dataset():
    from repro.workloads import build_dataset

    return build_dataset(scale=bench_scale())


@pytest.fixture(scope="session")
def records(dataset):
    from repro.analysis import run_experiments

    return run_experiments(dataset, processor_counts=bench_processors())


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(artifact_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it for -s runs."""
    path = artifact_dir / name
    path.write_text(text + "\n")
    print(f"\n[artifact: {path}]\n{text}")
